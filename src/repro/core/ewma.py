"""Exponentially weighted moving averages used by the C3 control loops.

The paper (§3.1) smooths the per-response feedback signals (queue size,
service time) as well as the client-observed response times with EWMAs.  Two
variants are provided:

* :class:`EWMA` — classic fixed-weight EWMA, new = alpha * sample + (1-alpha) * old.
* :class:`TimeDecayedEWMA` — a time-aware EWMA whose effective weight grows
  with the gap since the previous sample, so that stale state decays when a
  server has not been contacted for a while.  This mirrors how production
  implementations (for example the Cassandra patch and the MongoDB port the
  authors mention) avoid pinning a score to ancient history.
"""

from __future__ import annotations

import math

__all__ = ["EWMA", "TimeDecayedEWMA"]


class EWMA:
    """A fixed-weight exponentially weighted moving average.

    Parameters
    ----------
    alpha:
        Smoothing weight applied to each new sample; must lie in ``(0, 1]``.
        ``alpha = 1`` degenerates to "latest sample wins".
    initial:
        Optional initial value.  When ``None`` the first observed sample
        seeds the average directly (no bias towards zero).
    """

    __slots__ = ("alpha", "_value", "_count")

    def __init__(self, alpha: float = 0.9, initial: float | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: float | None = None if initial is None else float(initial)
        self._count = 0

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        sample = float(sample)
        if math.isnan(sample):
            raise ValueError("cannot update EWMA with NaN")
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        self._count += 1
        return self._value

    @property
    def value(self) -> float:
        """Current smoothed value (0.0 when no samples have been observed)."""
        return 0.0 if self._value is None else self._value

    @property
    def initialized(self) -> bool:
        """True once at least one sample (or an explicit initial) is present."""
        return self._value is not None

    @property
    def count(self) -> int:
        """Number of samples folded in via :meth:`update`."""
        return self._count

    def reset(self, value: float | None = None) -> None:
        """Discard all state, optionally re-seeding with ``value``."""
        self._value = None if value is None else float(value)
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EWMA(alpha={self.alpha}, value={self.value:.6g}, count={self._count})"


class TimeDecayedEWMA:
    """An EWMA whose smoothing weight depends on inter-sample gaps.

    The effective per-sample weight is ``1 - exp(-dt / tau)`` where ``dt`` is
    the time since the previous sample and ``tau`` the decay time constant.
    Rapid-fire samples therefore change the average slowly (as a small-alpha
    EWMA would), while a sample arriving after a long silence almost fully
    replaces the stale value.

    Parameters
    ----------
    tau:
        Decay time constant, in the same time unit the caller uses for
        timestamps (milliseconds throughout this code base).
    """

    __slots__ = ("tau", "_value", "_last_time", "_count")

    def __init__(self, tau: float = 100.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self._value: float | None = None
        self._last_time: float | None = None
        self._count = 0

    def update(self, sample: float, now: float) -> float:
        """Fold ``sample`` observed at time ``now`` into the average."""
        sample = float(sample)
        if math.isnan(sample):
            raise ValueError("cannot update TimeDecayedEWMA with NaN")
        if self._value is None or self._last_time is None:
            self._value = sample
        else:
            dt = max(0.0, float(now) - self._last_time)
            weight = 1.0 - math.exp(-dt / self.tau)
            # Guard against a zero gap collapsing the weight entirely: even
            # back-to-back samples should nudge the average a little.
            weight = max(weight, 1e-3)
            self._value = weight * sample + (1.0 - weight) * self._value
        self._last_time = float(now)
        self._count += 1
        return self._value

    @property
    def value(self) -> float:
        """Current smoothed value (0.0 when no samples have been observed)."""
        return 0.0 if self._value is None else self._value

    @property
    def initialized(self) -> bool:
        """True once at least one sample has been folded in."""
        return self._value is not None

    @property
    def count(self) -> int:
        """Number of samples folded in via :meth:`update`."""
        return self._count

    def reset(self) -> None:
        """Discard all state."""
        self._value = None
        self._last_time = None
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeDecayedEWMA(tau={self.tau}, value={self.value:.6g}, count={self._count})"
