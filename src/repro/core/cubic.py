"""The CUBIC growth law — the single home of its formulas and constants.

Every module that reasons about the cubic rate-adaptation curve

    rate(ΔT) = γ · (ΔT − (β·R0/γ)^(1/3))³ + R0

must agree on two derived quantities: the inflection point ("saddle centre")
``ΔT* = (β·R0/γ)^(1/3)`` and its inverse, the γ that places the inflection at
a chosen ΔT*.  Those formulas used to be re-derived independently in
``core/rate_control`` (growth curve), ``core/config`` (default-γ selection)
and ``experiments/fig05_cubic_curve`` (region boundaries) — three copies of
the same algebra that could drift apart silently.  They now live here, and a
cross-module equivalence test pins all consumers to this implementation.

The paper's default constants (§4) are also exported so callers never
hard-code them.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_BETA",
    "DEFAULT_SADDLE_MS",
    "DEFAULT_SMAX",
    "cubic_inflection_ms",
    "cubic_rate",
    "gamma_for_saddle",
]

#: Multiplicative-decrease factor β (§4).
DEFAULT_BETA = 0.2
#: Desired saddle-region length of the cubic curve, in ms (§4: "~100 ms").
DEFAULT_SADDLE_MS = 100.0
#: Cap on a single rate-increase step, in requests per δ window (§4).
DEFAULT_SMAX = 10.0


def cubic_inflection_ms(saturation_rate: float, beta: float, gamma: float) -> float:
    """ΔT* = (β·R0/γ)^(1/3): where the cubic's saddle region is centred.

    At ``ΔT = ΔT*`` the curve crosses the last-known saturation rate R0 with
    zero second derivative — the flat "saddle" of Figure 5 straddles it.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    if saturation_rate < 0:
        raise ValueError("saturation_rate must be non-negative")
    return (beta * saturation_rate / gamma) ** (1.0 / 3.0)


def cubic_rate(elapsed_ms: float, saturation_rate: float, beta: float, gamma: float) -> float:
    """Evaluate the cubic growth curve.

    Parameters
    ----------
    elapsed_ms:
        ΔT — time since the last rate-decrease event, in milliseconds.
    saturation_rate:
        R0 — the sending rate at the time of the last decrease.
    beta:
        Multiplicative decrease factor.
    gamma:
        Scaling factor controlling the saddle length.
    """
    inflection = cubic_inflection_ms(saturation_rate, beta, gamma)
    return gamma * (elapsed_ms - inflection) ** 3 + saturation_rate


def gamma_for_saddle(saddle_ms: float, beta: float, saturation_rate: float) -> float:
    """The γ that centres the saddle at ``saddle_ms / 2`` — the inverse of
    :func:`cubic_inflection_ms`.

    Solving ``(β·R0/γ)^(1/3) = saddle/2`` for γ gives
    ``γ = β·R0 / (saddle/2)³``, so the flat region straddles roughly
    ``saddle_ms`` around the inflection.
    """
    half = max(saddle_ms, 1e-9) / 2.0
    return beta * max(saturation_rate, 1e-9) / (half**3)
