"""Configuration for the C3 replica-selection mechanism.

The defaults follow §4 of the paper:

* multiplicative decrease ``beta = 0.2``;
* ``gamma`` chosen so the saddle region of the cubic is ~100 ms long;
* rate window ``delta = 20`` ms;
* hysteresis = 2 × rate window;
* rate-increase step cap ``smax = 10``;
* cubic scoring exponent ``b = 3``;
* concurrency-compensation weight = number of clients in the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .cubic import gamma_for_saddle

__all__ = ["C3Config"]


@dataclass(slots=True)
class C3Config:
    """Tunable parameters of the C3 algorithm.

    Attributes
    ----------
    score_exponent:
        Exponent ``b`` of the queue-size estimate in the scoring function
        (``b = 3`` gives the cubic selection of the paper, ``b = 1`` degrades
        to the linear scoring Figure 4 argues against).
    concurrency_weight:
        Weight ``w`` multiplying the client's outstanding-request count in the
        queue-size estimate ``q̂_s = 1 + os_s · w + q̄_s``.  The paper sets this
        to the number of clients in the system.
    ewma_alpha:
        Smoothing weight used for the response-time, queue-size and
        service-time EWMAs maintained by the client.
    rate_delta_ms:
        Length δ of the rate-limiter window, in milliseconds.
    beta:
        Multiplicative-decrease factor applied to the sending rate when the
        receive rate falls behind.
    smax:
        Cap on a single rate-increase step (requests per δ window).
    saddle_duration_ms:
        Desired length of the saddle region of the cubic growth curve;
        used to derive ``gamma`` when ``gamma`` is not given explicitly.
    gamma:
        Scaling factor of the cubic growth curve.  ``None`` (default) derives
        it from ``saddle_duration_ms`` and the initial rate.
    hysteresis_ms:
        Minimum time after a rate increase before a rate decrease is allowed
        (Algorithm 2, line 3).  ``None`` defaults to ``2 * rate_delta_ms``.
    initial_rate:
        Initial per-server sending rate (requests per δ window).
    min_rate:
        Floor for the sending rate so a server is never starved of probes.
    max_rate:
        Optional ceiling for the sending rate (``None`` = unbounded).
    rate_control_enabled:
        Ablation switch: when ``False`` the scheduler only ranks replicas and
        never exerts backpressure.
    rate_excess_tolerance:
        How much the achieved send rate must exceed the receive rate (as a
        ratio) before the controller treats the server as falling behind.
    rate_min_utilisation:
        Minimum fraction of the rate limit the client must actually be using
        before a multiplicative decrease is considered; below this the limit
        is not binding, so decreasing it would only add noise.
    service_time_floor_ms:
        Numerical floor for the smoothed service time to keep scores finite.
    """

    score_exponent: float = 3.0
    concurrency_weight: float = 1.0
    ewma_alpha: float = 0.9
    rate_delta_ms: float = 20.0
    beta: float = 0.2
    smax: float = 10.0
    saddle_duration_ms: float = 100.0
    gamma: float | None = None
    hysteresis_ms: float | None = None
    initial_rate: float = 10.0
    min_rate: float = 0.1
    max_rate: float | None = None
    rate_control_enabled: bool = True
    rate_excess_tolerance: float = 1.2
    rate_min_utilisation: float = 0.4
    service_time_floor_ms: float = 1e-3
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.score_exponent <= 0:
            raise ValueError("score_exponent must be positive")
        if self.concurrency_weight < 0:
            raise ValueError("concurrency_weight must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.rate_delta_ms <= 0:
            raise ValueError("rate_delta_ms must be positive")
        if not 0.0 < self.beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        if self.smax <= 0:
            raise ValueError("smax must be positive")
        if self.initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")
        if self.max_rate is not None and self.max_rate < self.min_rate:
            raise ValueError("max_rate must be >= min_rate")
        if self.gamma is not None and self.gamma <= 0:
            raise ValueError("gamma must be positive when given")
        if self.hysteresis_ms is not None and self.hysteresis_ms < 0:
            raise ValueError("hysteresis_ms must be non-negative when given")
        if self.rate_excess_tolerance < 1.0:
            raise ValueError("rate_excess_tolerance must be >= 1")
        if not 0.0 <= self.rate_min_utilisation <= 1.0:
            raise ValueError("rate_min_utilisation must be in [0, 1]")

    @property
    def effective_hysteresis_ms(self) -> float:
        """Hysteresis duration, defaulting to twice the rate window."""
        if self.hysteresis_ms is not None:
            return self.hysteresis_ms
        return 2.0 * self.rate_delta_ms

    def effective_gamma(self, saturation_rate: float | None = None) -> float:
        """Gamma to use for the cubic growth curve.

        When an explicit ``gamma`` is configured it is returned unchanged,
        otherwise gamma is derived from the desired saddle duration and the
        given saturation rate (falling back to ``initial_rate``).
        """
        if self.gamma is not None:
            return self.gamma
        rate = self.initial_rate if saturation_rate is None else saturation_rate
        return gamma_for_saddle(self.saddle_duration_ms, self.beta, rate)

    def with_clients(self, n_clients: int) -> "C3Config":
        """Return a copy whose concurrency weight equals ``n_clients``.

        The paper sets the concurrency-compensation weight ``w`` to the number
        of clients in the system; this helper makes that the one-liner it
        should be.
        """
        if n_clients < 0:
            raise ValueError("n_clients must be non-negative")
        return replace(self, concurrency_weight=float(n_clients))

    def copy(self, **overrides) -> "C3Config":
        """Return a copy with ``overrides`` applied (dataclasses.replace)."""
        return replace(self, **overrides)
