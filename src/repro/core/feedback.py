"""Server feedback piggy-backed on responses.

C3 servers relay two numbers on every response (§3.1):

* ``queue_size`` — the number of requests pending at the server, recorded
  *after* the request has been serviced and just before the response is
  dispatched;
* ``service_time`` — an estimate of the server's current per-request service
  time ``1/μ_s`` (the reference implementation piggy-backs the service time of
  the operation that generated the response; the client smooths it).

The record is deliberately tiny — the paper stresses that the feedback is
"minimal and approximate".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerFeedback"]


@dataclass(frozen=True, slots=True)
class ServerFeedback:
    """Feedback attached by a server to a single response.

    Attributes
    ----------
    queue_size:
        Number of queued (waiting + in-service) requests at the server at the
        moment the response was dispatched.  Must be non-negative.
    service_time:
        The server-side service time, in milliseconds, of the request that
        produced this response (or the server's current service-time
        estimate).  Must be positive.
    server_id:
        Identifier of the reporting server; useful when feedback records are
        routed through shared channels (gossip, tracing) rather than attached
        to a response object directly.
    """

    queue_size: float
    service_time: float
    server_id: object | None = None

    def __post_init__(self) -> None:
        if self.queue_size < 0:
            raise ValueError(f"queue_size must be >= 0, got {self.queue_size}")
        if self.service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {self.service_time}")

    @property
    def service_rate(self) -> float:
        """The implied service rate μ (requests per millisecond)."""
        return 1.0 / self.service_time
