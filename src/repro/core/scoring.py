"""Replica ranking — the C3 scoring function (§3.1).

Each client maintains, per server ``s``:

* ``R_s``       — EWMA of the response times it observed from ``s``;
* ``q̄_s``       — EWMA of the queue-size feedback piggy-backed by ``s``;
* ``1/μ̄_s``     — EWMA of the service-time feedback piggy-backed by ``s``;
* ``os_s``      — an instantaneous count of its outstanding requests to ``s``.

The client extrapolates a queue-size estimate that accounts for concurrency
(other clients, requests in flight):

    q̂_s = 1 + os_s · w + q̄_s

and scores the server with the cubic function

    Ψ_s = R_s − 1/μ̄_s + (q̂_s)^b / μ̄_s          (b = 3 by default)

Lower scores are better.  The ``R_s − 1/μ̄_s`` term makes the score collapse to
the plain observed response time when the queue estimate is 1 (no outstanding
requests, zero queue feedback), while the convex queue penalty dominates as
soon as queues build up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from .config import C3Config
from .ewma import EWMA
from .feedback import ServerFeedback

__all__ = ["ServerStats", "ReplicaScorer", "cubic_score"]


def cubic_score(
    response_time: float,
    queue_estimate: float,
    service_time: float,
    exponent: float = 3.0,
) -> float:
    """Compute the C3 score for one server from already-smoothed inputs.

    Parameters
    ----------
    response_time:
        Smoothed client-observed response time ``R_s`` (milliseconds).
    queue_estimate:
        Queue-size estimate ``q̂_s`` (requests), already including the
        concurrency compensation and the ``1 +`` offset.
    service_time:
        Smoothed service time ``1/μ̄_s`` (milliseconds); must be positive.
    exponent:
        Exponent ``b`` applied to the queue estimate (3 = cubic).
    """
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    if queue_estimate < 0:
        raise ValueError(f"queue_estimate must be non-negative, got {queue_estimate}")
    mu = 1.0 / service_time
    return response_time - service_time + (queue_estimate**exponent) / mu


@dataclass
class ServerStats:
    """Per-server state a client keeps for ranking purposes."""

    server_id: Hashable
    response_time: EWMA
    queue_size: EWMA
    service_time: EWMA
    outstanding: int = 0
    feedback_count: int = 0
    last_feedback_at: float | None = None
    last_sent_at: float | None = None

    def snapshot(self) -> dict:
        """Return a plain-dict view (handy for logging and tests)."""
        return {
            "server_id": self.server_id,
            "response_time": self.response_time.value,
            "queue_size": self.queue_size.value,
            "service_time": self.service_time.value,
            "outstanding": self.outstanding,
            "feedback_count": self.feedback_count,
        }


@dataclass
class _ScorerCounters:
    """Internal bookkeeping counters exposed for observability."""

    sends: int = 0
    responses: int = 0
    timeouts: int = 0
    resets: int = 0
    score_evaluations: int = 0

    def as_dict(self) -> dict:
        return {
            "sends": self.sends,
            "responses": self.responses,
            "timeouts": self.timeouts,
            "resets": self.resets,
            "score_evaluations": self.score_evaluations,
        }


class ReplicaScorer:
    """Maintains per-server statistics and ranks replicas by the C3 score.

    The scorer is deliberately framework-agnostic: callers report sends and
    responses with explicit timestamps, and ask for rankings of arbitrary
    replica groups.  Both the flat simulator and the Cassandra-like cluster
    substrate drive the same object.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.C3Config`; only the scoring-related
        fields are used here.
    """

    def __init__(self, config: C3Config | None = None) -> None:
        self.config = config or C3Config()
        self._stats: dict[Hashable, ServerStats] = {}
        self.counters = _ScorerCounters()

    # ------------------------------------------------------------------ state
    def stats_for(self, server_id: Hashable) -> ServerStats:
        """Return (creating if needed) the stats record for ``server_id``."""
        stats = self._stats.get(server_id)
        if stats is None:
            alpha = self.config.ewma_alpha
            stats = ServerStats(
                server_id=server_id,
                response_time=EWMA(alpha),
                queue_size=EWMA(alpha),
                service_time=EWMA(alpha),
            )
            self._stats[server_id] = stats
        return stats

    @property
    def known_servers(self) -> list[Hashable]:
        """Servers for which any state exists."""
        return list(self._stats)

    def outstanding(self, server_id: Hashable) -> int:
        """Number of requests this client currently has in flight to a server."""
        stats = self._stats.get(server_id)
        return 0 if stats is None else stats.outstanding

    def total_outstanding(self) -> int:
        """Total in-flight requests across all servers."""
        return sum(s.outstanding for s in self._stats.values())

    def reset_server(self, server_id: Hashable) -> None:
        """Forget all state about one server (e.g. after it left the ring)."""
        if server_id in self._stats:
            del self._stats[server_id]
            self.counters.resets += 1

    # ---------------------------------------------------------------- updates
    def on_send(self, server_id: Hashable, now: float | None = None) -> None:
        """Record that a request was dispatched to ``server_id``."""
        stats = self.stats_for(server_id)
        stats.outstanding += 1
        stats.last_sent_at = now
        self.counters.sends += 1

    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float | None = None,
    ) -> None:
        """Record a completed request.

        Parameters
        ----------
        server_id:
            The server that produced the response.
        feedback:
            The piggy-backed :class:`ServerFeedback`, or ``None`` when the
            transport lost it (the response time is still folded in).
        response_time:
            End-to-end response time observed by the client, in milliseconds.
        now:
            Current client clock, used only for bookkeeping.
        """
        if response_time < 0:
            raise ValueError(f"response_time must be non-negative, got {response_time}")
        stats = self.stats_for(server_id)
        if stats.outstanding > 0:
            stats.outstanding -= 1
        stats.response_time.update(response_time)
        if feedback is not None:
            stats.queue_size.update(feedback.queue_size)
            stats.service_time.update(
                max(feedback.service_time, self.config.service_time_floor_ms)
            )
            stats.feedback_count += 1
            stats.last_feedback_at = now
        self.counters.responses += 1

    def on_timeout(self, server_id: Hashable, penalty_ms: float | None = None) -> None:
        """Record a request that never completed.

        The outstanding count is decremented and, optionally, a penalty
        response time is folded in so that a black-holing server gets ranked
        progressively worse instead of retaining its last (good) score.
        """
        stats = self.stats_for(server_id)
        if stats.outstanding > 0:
            stats.outstanding -= 1
        if penalty_ms is not None:
            stats.response_time.update(penalty_ms)
        self.counters.timeouts += 1

    # ---------------------------------------------------------------- scoring
    def queue_estimate(self, server_id: Hashable) -> float:
        """The concurrency-compensated queue estimate ``q̂_s``."""
        stats = self.stats_for(server_id)
        return 1.0 + stats.outstanding * self.config.concurrency_weight + stats.queue_size.value

    def expected_service_time(self, server_id: Hashable) -> float:
        """Smoothed service time ``1/μ̄_s`` with the configured numeric floor."""
        stats = self.stats_for(server_id)
        if not stats.service_time.initialized:
            return self.config.service_time_floor_ms
        return max(stats.service_time.value, self.config.service_time_floor_ms)

    def score(self, server_id: Hashable) -> float:
        """The C3 score Ψ_s for one server (lower is better)."""
        stats = self.stats_for(server_id)
        self.counters.score_evaluations += 1
        return cubic_score(
            response_time=stats.response_time.value,
            queue_estimate=self.queue_estimate(server_id),
            service_time=self.expected_service_time(server_id),
            exponent=self.config.score_exponent,
        )

    def scores(self, replica_group: Iterable[Hashable]) -> Mapping[Hashable, float]:
        """Scores for every member of ``replica_group``."""
        return {server_id: self.score(server_id) for server_id in replica_group}

    def rank(self, replica_group: Iterable[Hashable]) -> list[Hashable]:
        """Replica group sorted by ascending score (best server first).

        Ties are broken by the number of outstanding requests (fewer first)
        and then by a stable ordering of the server identifiers, so that
        ranking is deterministic for reproducible simulations.
        """
        group = list(replica_group)
        if not group:
            raise ValueError("replica_group must not be empty")
        scored = self.scores(group)
        return sorted(
            group,
            key=lambda sid: (scored[sid], self.outstanding(sid), _stable_key(sid)),
        )

    def best(self, replica_group: Iterable[Hashable]) -> Hashable:
        """The best-ranked replica of the group."""
        return self.rank(replica_group)[0]

    # ------------------------------------------------------------ observation
    def snapshot(self) -> dict:
        """A plain-dict dump of all per-server state (for logging/tests)."""
        return {sid: stats.snapshot() for sid, stats in self._stats.items()}


def _stable_key(server_id: Hashable) -> str:
    """A deterministic tie-break key for arbitrary hashable server ids."""
    return f"{type(server_id).__name__}:{server_id!r}"
