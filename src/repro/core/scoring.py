"""Replica ranking — the C3 scoring function (§3.1).

Each client maintains, per server ``s``:

* ``R_s``       — EWMA of the response times it observed from ``s``;
* ``q̄_s``       — EWMA of the queue-size feedback piggy-backed by ``s``;
* ``1/μ̄_s``     — EWMA of the service-time feedback piggy-backed by ``s``;
* ``os_s``      — an instantaneous count of its outstanding requests to ``s``.

The client extrapolates a queue-size estimate that accounts for concurrency
(other clients, requests in flight):

    q̂_s = 1 + os_s · w + q̄_s

and scores the server with the cubic function

    Ψ_s = R_s − 1/μ̄_s + (q̂_s)^b / μ̄_s          (b = 3 by default)

Lower scores are better.  The ``R_s − 1/μ̄_s`` term makes the score collapse to
the plain observed response time when the queue estimate is 1 (no outstanding
requests, zero queue feedback), while the convex queue penalty dominates as
soon as queues build up.

Storage layout
--------------
The scorer keeps its per-server state in dense parallel arrays (one slot per
server, appended on first contact) instead of per-server objects.  Three
consumers read the very same slots:

* the scalar hot path (``score``/``rank`` over RF-sized groups, where plain
  Python arithmetic beats numpy's per-call overhead by ~9x);
* :meth:`ReplicaScorer.scores_array`, which folds a whole replica group into
  one vectorized numpy expression (used by ``rank`` for wide groups);
* the batched simulator kernel, which obtains the live arrays through
  :meth:`ReplicaScorer.kernel_state` and inlines every read/write — because
  the arrays are shared rather than copied, fallback paths that call scorer
  methods mid-run stay consistent with the kernel's inlined fast path.

:meth:`ReplicaScorer.stats_for` materializes a detached
:class:`ServerStats` snapshot for observability and tests; mutating the
snapshot does not write back into the scorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import numpy as np

from .config import C3Config
from .ewma import EWMA
from .feedback import ServerFeedback

__all__ = ["ServerStats", "ReplicaScorer", "cubic_score"]

#: Group size at or above which :meth:`ReplicaScorer.rank` switches to the
#: vectorized :meth:`ReplicaScorer.scores_array` path.  At the paper's RF=3
#: the scalar loop is several times faster than numpy's fixed per-call
#: overhead; wide groups (cluster-scale rankings) amortize it.  Both paths
#: produce bitwise-identical scores (pinned by a property test), so the
#: threshold is a pure performance knob.
_VECTORIZE_MIN_GROUP = 16


def cubic_score(
    response_time: float,
    queue_estimate: float,
    service_time: float,
    exponent: float = 3.0,
) -> float:
    """Compute the C3 score for one server from already-smoothed inputs.

    Parameters
    ----------
    response_time:
        Smoothed client-observed response time ``R_s`` (milliseconds).
    queue_estimate:
        Queue-size estimate ``q̂_s`` (requests), already including the
        concurrency compensation and the ``1 +`` offset.
    service_time:
        Smoothed service time ``1/μ̄_s`` (milliseconds); must be positive.
    exponent:
        Exponent ``b`` applied to the queue estimate (3 = cubic).
    """
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    if queue_estimate < 0:
        raise ValueError(f"queue_estimate must be non-negative, got {queue_estimate}")
    mu = 1.0 / service_time
    return response_time - service_time + (queue_estimate**exponent) / mu


@dataclass
class ServerStats:
    """Per-server state a client keeps for ranking purposes.

    Returned by :meth:`ReplicaScorer.stats_for` as a *detached snapshot* of
    the scorer's dense state: reads reflect the scorer at call time, writes
    do not propagate back.
    """

    server_id: Hashable
    response_time: EWMA
    queue_size: EWMA
    service_time: EWMA
    outstanding: int = 0
    feedback_count: int = 0
    last_feedback_at: float | None = None
    last_sent_at: float | None = None

    def snapshot(self) -> dict:
        """Return a plain-dict view (handy for logging and tests)."""
        return {
            "server_id": self.server_id,
            "response_time": self.response_time.value,
            "queue_size": self.queue_size.value,
            "service_time": self.service_time.value,
            "outstanding": self.outstanding,
            "feedback_count": self.feedback_count,
        }


@dataclass
class _ScorerCounters:
    """Internal bookkeeping counters exposed for observability."""

    sends: int = 0
    responses: int = 0
    timeouts: int = 0
    resets: int = 0
    score_evaluations: int = 0

    def as_dict(self) -> dict:
        return {
            "sends": self.sends,
            "responses": self.responses,
            "timeouts": self.timeouts,
            "resets": self.resets,
            "score_evaluations": self.score_evaluations,
        }


def _ewma_fold(values: list[float], counts: list[int], i: int, sample: float, alpha: float) -> None:
    """Fold ``sample`` into the dense EWMA slot ``i`` (mirrors :meth:`EWMA.update`)."""
    if sample != sample:  # NaN — same guard EWMA.update applies
        raise ValueError("cannot update EWMA with NaN")
    if counts[i]:
        values[i] = alpha * sample + (1.0 - alpha) * values[i]
    else:
        values[i] = sample
    counts[i] += 1


class ReplicaScorer:
    """Maintains per-server statistics and ranks replicas by the C3 score.

    The scorer is deliberately framework-agnostic: callers report sends and
    responses with explicit timestamps, and ask for rankings of arbitrary
    replica groups.  Both the flat simulator and the Cassandra-like cluster
    substrate drive the same object.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.C3Config`; only the scoring-related
        fields are used here.
    """

    def __init__(self, config: C3Config | None = None) -> None:
        self.config = config or C3Config()
        self.counters = _ScorerCounters()
        # Dense per-server parallel arrays; slot indices are handed out by
        # ``_slot`` in first-contact order.  ``*_cnt == 0`` marks an
        # uninitialized EWMA (value slot then holds 0.0, matching
        # ``EWMA.value``'s zero default).
        self._index: dict[Hashable, int] = {}
        self._ids: list[Hashable] = []
        self._tiekey: list[str] = []
        self._rt_val: list[float] = []
        self._rt_cnt: list[int] = []
        self._qs_val: list[float] = []
        self._qs_cnt: list[int] = []
        self._st_val: list[float] = []
        self._st_cnt: list[int] = []
        self._out: list[int] = []
        self._fb_cnt: list[int] = []
        self._last_fb: list[float | None] = []
        self._last_sent: list[float | None] = []

    # ------------------------------------------------------------------ state
    def _slot(self, server_id: Hashable) -> int:
        """Slot index for ``server_id``, allocating one on first contact."""
        i = self._index.get(server_id)
        if i is None:
            i = len(self._ids)
            self._index[server_id] = i
            self._ids.append(server_id)
            self._tiekey.append(_stable_key(server_id))
            self._rt_val.append(0.0)
            self._rt_cnt.append(0)
            self._qs_val.append(0.0)
            self._qs_cnt.append(0)
            self._st_val.append(0.0)
            self._st_cnt.append(0)
            self._out.append(0)
            self._fb_cnt.append(0)
            self._last_fb.append(None)
            self._last_sent.append(None)
        return i

    def _ewma_view(self, value: float, count: int) -> EWMA:
        ewma = EWMA(self.config.ewma_alpha)
        if count:
            ewma._value = value
            ewma._count = count
        return ewma

    def stats_for(self, server_id: Hashable) -> ServerStats:
        """A detached :class:`ServerStats` snapshot (creating state if needed)."""
        i = self._slot(server_id)
        return ServerStats(
            server_id=server_id,
            response_time=self._ewma_view(self._rt_val[i], self._rt_cnt[i]),
            queue_size=self._ewma_view(self._qs_val[i], self._qs_cnt[i]),
            service_time=self._ewma_view(self._st_val[i], self._st_cnt[i]),
            outstanding=self._out[i],
            feedback_count=self._fb_cnt[i],
            last_feedback_at=self._last_fb[i],
            last_sent_at=self._last_sent[i],
        )

    @property
    def known_servers(self) -> list[Hashable]:
        """Servers for which any state exists."""
        return list(self._index)

    def outstanding(self, server_id: Hashable) -> int:
        """Number of requests this client currently has in flight to a server."""
        i = self._index.get(server_id)
        return 0 if i is None else self._out[i]

    def total_outstanding(self) -> int:
        """Total in-flight requests across all servers."""
        return sum(self._out[i] for i in self._index.values())

    def reset_server(self, server_id: Hashable) -> None:
        """Forget all state about one server (e.g. after it left the ring)."""
        i = self._index.pop(server_id, None)
        if i is not None:
            # The slot is orphaned (a later contact allocates a fresh one);
            # no array compaction, so live kernel views stay valid.
            self.counters.resets += 1

    # ---------------------------------------------------------------- updates
    def on_send(self, server_id: Hashable, now: float | None = None) -> None:
        """Record that a request was dispatched to ``server_id``."""
        i = self._slot(server_id)
        self._out[i] += 1
        self._last_sent[i] = now
        self.counters.sends += 1

    def on_response(
        self,
        server_id: Hashable,
        feedback: ServerFeedback | None,
        response_time: float,
        now: float | None = None,
    ) -> None:
        """Record a completed request.

        Parameters
        ----------
        server_id:
            The server that produced the response.
        feedback:
            The piggy-backed :class:`ServerFeedback`, or ``None`` when the
            transport lost it (the response time is still folded in).
        response_time:
            End-to-end response time observed by the client, in milliseconds.
        now:
            Current client clock, used only for bookkeeping.
        """
        if response_time < 0:
            raise ValueError(f"response_time must be non-negative, got {response_time}")
        i = self._slot(server_id)
        if self._out[i] > 0:
            self._out[i] -= 1
        alpha = self.config.ewma_alpha
        _ewma_fold(self._rt_val, self._rt_cnt, i, float(response_time), alpha)
        if feedback is not None:
            _ewma_fold(self._qs_val, self._qs_cnt, i, float(feedback.queue_size), alpha)
            _ewma_fold(
                self._st_val,
                self._st_cnt,
                i,
                float(max(feedback.service_time, self.config.service_time_floor_ms)),
                alpha,
            )
            self._fb_cnt[i] += 1
            self._last_fb[i] = now
        self.counters.responses += 1

    def on_timeout(self, server_id: Hashable, penalty_ms: float | None = None) -> None:
        """Record a request that never completed.

        The outstanding count is decremented and, optionally, a penalty
        response time is folded in so that a black-holing server gets ranked
        progressively worse instead of retaining its last (good) score.
        """
        i = self._slot(server_id)
        if self._out[i] > 0:
            self._out[i] -= 1
        if penalty_ms is not None:
            _ewma_fold(self._rt_val, self._rt_cnt, i, float(penalty_ms), self.config.ewma_alpha)
        self.counters.timeouts += 1

    # ---------------------------------------------------------------- scoring
    def queue_estimate(self, server_id: Hashable) -> float:
        """The concurrency-compensated queue estimate ``q̂_s``."""
        i = self._slot(server_id)
        return 1.0 + self._out[i] * self.config.concurrency_weight + self._qs_val[i]

    def expected_service_time(self, server_id: Hashable) -> float:
        """Smoothed service time ``1/μ̄_s`` with the configured numeric floor."""
        i = self._slot(server_id)
        if not self._st_cnt[i]:
            return self.config.service_time_floor_ms
        return max(self._st_val[i], self.config.service_time_floor_ms)

    def score(self, server_id: Hashable) -> float:
        """The C3 score Ψ_s for one server (lower is better)."""
        i = self._slot(server_id)
        self.counters.score_evaluations += 1
        cfg = self.config
        floor = cfg.service_time_floor_ms
        if self._st_cnt[i]:
            service_time = self._st_val[i]
            if service_time < floor:
                service_time = floor
        else:
            service_time = floor
        return cubic_score(
            response_time=self._rt_val[i],
            queue_estimate=1.0 + self._out[i] * cfg.concurrency_weight + self._qs_val[i],
            service_time=service_time,
            exponent=cfg.score_exponent,
        )

    def scores(self, replica_group: Iterable[Hashable]) -> Mapping[Hashable, float]:
        """Scores for every member of ``replica_group``."""
        return {server_id: self.score(server_id) for server_id in replica_group}

    def scores_array(self, replica_group: Iterable[Hashable]) -> np.ndarray:
        """Scores for a whole replica group as one vectorized numpy expression.

        Bitwise-identical to looping :meth:`score` over the group (pinned by
        a property test).  The additive/multiplicative/division terms are
        IEEE-exact under vectorization, but the ``q̂^b`` power term is
        computed with *scalar* Python ``**``: numpy's SIMD ``pow`` is not
        bitwise-equal to libm's scalar ``pow`` on all platforms, and golden
        digests ride on these scores.
        """
        idx = [self._slot(sid) for sid in replica_group]
        self.counters.score_evaluations += len(idx)
        cfg = self.config
        floor = cfg.service_time_floor_ms
        w = cfg.concurrency_weight
        b = cfg.score_exponent
        rt_val, qs_val, st_val = self._rt_val, self._qs_val, self._st_val
        st_cnt, out = self._st_cnt, self._out
        rt = np.array([rt_val[i] for i in idx], dtype=np.float64)
        st = np.array([st_val[i] if st_cnt[i] else floor for i in idx], dtype=np.float64)
        np.maximum(st, floor, out=st)
        qpow = np.array([(1.0 + out[i] * w + qs_val[i]) ** b for i in idx], dtype=np.float64)
        result: np.ndarray = rt - st + qpow / (1.0 / st)
        return result

    def rank(self, replica_group: Iterable[Hashable]) -> list[Hashable]:
        """Replica group sorted by ascending score (best server first).

        Ties are broken by the number of outstanding requests (fewer first)
        and then by a stable ordering of the server identifiers, so that
        ranking is deterministic for reproducible simulations.
        """
        group = list(replica_group)
        if not group:
            raise ValueError("replica_group must not be empty")
        scores: list[float]
        if len(group) >= _VECTORIZE_MIN_GROUP:
            scores = self.scores_array(group).tolist()
        else:
            scores = [self.score(sid) for sid in group]
        index, out, tiekey = self._index, self._out, self._tiekey
        slots = [index[sid] for sid in group]
        decorated = sorted(
            (scores[k], out[slots[k]], tiekey[slots[k]], k) for k in range(len(group))
        )
        return [group[d[3]] for d in decorated]

    def best(self, replica_group: Iterable[Hashable]) -> Hashable:
        """The best-ranked replica of the group."""
        return self.rank(replica_group)[0]

    # ------------------------------------------------------------------ kernel
    def kernel_state(
        self, num_servers: int
    ) -> (
        tuple[
            list[float],
            list[int],
            list[float],
            list[int],
            list[float],
            list[int],
            list[int],
            list[int],
            list[float | None],
            list[float | None],
            list[str],
        ]
        | None
    ):
        """Live dense state views for the batched kernel.

        Allocates slots for servers ``0..num_servers-1`` eagerly and returns
        the scorer's *live* parallel arrays — ``(rt_val, rt_cnt, qs_val,
        qs_cnt, st_val, st_cnt, outstanding, feedback_count, last_sent,
        last_feedback, tiekey)`` — indexable directly by integer server id.
        Because the arrays are shared rather than copied, kernel-inlined
        updates and scorer-method updates (fallback paths mid-run) observe
        each other immediately; there is nothing to sync back except the
        counter deltas folded by :meth:`kernel_restore`.

        Returns ``None`` when the slot table is not exactly the identity
        mapping over ``0..num_servers-1`` (e.g. a reused scorer with string
        ids), in which case the kernel must fall back to scorer methods.
        """
        for sid in range(num_servers):
            self._slot(sid)
        if self._ids != list(range(num_servers)):
            return None
        return (
            self._rt_val,
            self._rt_cnt,
            self._qs_val,
            self._qs_cnt,
            self._st_val,
            self._st_cnt,
            self._out,
            self._fb_cnt,
            self._last_sent,
            self._last_fb,
            self._tiekey,
        )

    def kernel_restore(self, sends: int, responses: int, score_evaluations: int) -> None:
        """Fold the kernel's locally-accumulated counter deltas back in.

        The dense arrays themselves need no restore (they are shared live);
        only the observability counters are batched by the kernel for speed.
        """
        self.counters.sends += sends
        self.counters.responses += responses
        self.counters.score_evaluations += score_evaluations

    # ------------------------------------------------------------ observation
    def snapshot(self) -> dict:
        """A plain-dict dump of all per-server state (for logging/tests)."""
        return {sid: self.stats_for(sid).snapshot() for sid in self._index}


def _stable_key(server_id: Hashable) -> str:
    """A deterministic tie-break key for arbitrary hashable server ids."""
    return f"{type(server_id).__name__}:{server_id!r}"
