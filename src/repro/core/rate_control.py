"""Distributed rate control — the CUBIC-inspired adaptation loop (§3.2).

Every client keeps, per server, a windowed rate limiter (``srate`` requests
per δ ms) and adapts ``srate`` from the measured receive rate ``rrate``:

* if ``srate > rrate`` (the server is not keeping up) and the hysteresis
  period since the last increase has elapsed, remember the saturation rate
  ``R0 = srate`` and multiplicatively decrease ``srate ← srate · β``;
* if ``srate < rrate`` the client grows the rate along a cubic curve

      rate(ΔT) = γ · (ΔT − (β·R0/γ)^(1/3))³ + R0

  where ``ΔT`` is the time since the last decrease, capping each step at
  ``smax``.

The cubic shape yields three operating regions (Figure 5): steep growth at
low rates, a saddle around the last-known saturation rate, and optimistic
probing beyond it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from .config import C3Config
from .cubic import cubic_inflection_ms, cubic_rate
from .ewma import EWMA

__all__ = [
    "cubic_inflection_ms",
    "cubic_rate",
    "RateLimiter",
    "ReceiveRateTracker",
    "CubicRateController",
    "PerServerRateControl",
]


class RateLimiter:
    """A windowed request limiter: at most ``rate`` sends per δ-ms window.

    The limiter mirrors the paper's description of a token-bucket style
    mechanism with a fixed window δ: the number of permits consumed in the
    current window is tracked, and the window resets once δ has elapsed.
    Fractional rates are honoured by accumulating fractional allowances
    across windows.
    """

    __slots__ = ("delta_ms", "_rate", "_window_start", "_used", "_carry")

    def __init__(self, rate: float, delta_ms: float = 20.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if delta_ms <= 0:
            raise ValueError("delta_ms must be positive")
        self.delta_ms = float(delta_ms)
        self._rate = float(rate)
        self._window_start = 0.0
        self._used = 0.0
        self._carry = 0.0

    @property
    def rate(self) -> float:
        """Current allowed sends per window."""
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        if value <= 0:
            raise ValueError("rate must be positive")
        self._rate = float(value)

    def _roll_window(self, now: float) -> None:
        if now < self._window_start:
            # A caller rewound the clock (tests); restart bookkeeping.
            self._window_start = now
            self._used = 0.0
            self._carry = 0.0
            return
        elapsed = now - self._window_start
        if elapsed >= self.delta_ms:
            windows = int(elapsed // self.delta_ms)
            # Unused allowance carries over up to one bucket's worth; the
            # bucket holds at least one whole permit so that fractional rates
            # (e.g. 0.1 requests per window) still admit a request once
            # enough windows have elapsed instead of starving forever.
            cap = max(self._rate, 1.0)
            leftover = max(0.0, self._carry + self._rate - self._used)
            self._carry = min(cap, leftover + self._rate * (windows - 1))
            self._window_start += windows * self.delta_ms
            self._used = 0.0

    def available(self, now: float) -> float:
        """Permits still available in the window containing ``now``."""
        self._roll_window(now)
        budget = self._rate + self._carry
        return max(0.0, budget - self._used)

    def within_rate(self, now: float) -> bool:
        """True when at least one whole permit is available."""
        return self.available(now) >= 1.0

    def try_acquire(self, now: float) -> bool:
        """Consume a permit if available; return whether it was granted."""
        self._roll_window(now)
        budget = self._rate + self._carry
        if budget - self._used >= 1.0:
            self._used += 1.0
            return True
        return False

    def time_until_available(self, now: float) -> float:
        """Milliseconds until the next permit could be granted (0 if now)."""
        if self.within_rate(now):
            return 0.0
        # How many whole permits are we short of 1.0, and how many windows
        # does it take to accumulate them at the current per-window rate?
        deficit = 1.0 - (self._rate + self._carry - self._used)
        windows_needed = max(1, int(math.ceil(deficit / self._rate))) if self._rate > 0 else 1
        return max(0.0, self._window_start + windows_needed * self.delta_ms - now)


class ReceiveRateTracker:
    """Tracks the responses received per δ-ms window, smoothed with an EWMA."""

    __slots__ = ("delta_ms", "_window_start", "_count", "_ewma")

    def __init__(self, delta_ms: float = 20.0, alpha: float = 0.9) -> None:
        if delta_ms <= 0:
            raise ValueError("delta_ms must be positive")
        self.delta_ms = float(delta_ms)
        self._window_start = 0.0
        self._count = 0.0
        self._ewma = EWMA(alpha)

    def _roll(self, now: float) -> None:
        if now < self._window_start:
            self._window_start = now
            self._count = 0.0
            return
        while now - self._window_start >= self.delta_ms:
            self._ewma.update(self._count)
            self._count = 0.0
            self._window_start += self.delta_ms

    def record_response(self, now: float) -> None:
        """Record a response arriving at time ``now``."""
        self._roll(now)
        self._count += 1.0

    def rate(self, now: float) -> float:
        """Smoothed receive rate (responses per δ window)."""
        self._roll(now)
        if not self._ewma.initialized:
            # Before a full window has elapsed, extrapolate from the partial
            # window so early comparisons are not biased to zero.
            elapsed = max(now - self._window_start, 1e-9)
            return self._count * (self.delta_ms / elapsed) if self._count else 0.0
        return self._ewma.value


@dataclass
class RateControlEvent:
    """A record of a single rate adjustment (useful for Fig. 13 style traces)."""

    time: float
    server_id: Hashable
    kind: str  # "increase" | "decrease"
    old_rate: float
    new_rate: float
    saturation_rate: float


class CubicRateController:
    """Per-server CUBIC rate adaptation (Algorithm 2, lines 3–11).

    One refinement over the pseudo-code is needed to make the loop robust for
    lightly-loaded clients: the paper's clients (YCSB coordinators at maximum
    attainable throughput) always have demand close to their ``srate`` limit,
    so comparing the *limit* against the receive rate is equivalent to asking
    whether the server keeps up with what the client sends.  A client that
    only sends the occasional request would see ``srate > rrate`` purely
    because it is not using its allowance, and would spuriously collapse its
    rate to the floor.  The controller therefore also tracks the achieved
    send rate and only treats ``srate > rrate`` as congestion when (a) the
    achieved send rate itself exceeds the receive rate (the server is
    demonstrably falling behind), with a tolerance for measurement noise, and
    (b) the client is actually using a meaningful share of its limit.  Both
    thresholds are configurable via
    :attr:`~repro.core.config.C3Config.rate_excess_tolerance` and
    :attr:`~repro.core.config.C3Config.rate_min_utilisation`.
    """

    def __init__(self, config: C3Config, server_id: Hashable = None) -> None:
        self.config = config
        self.server_id = server_id
        self.limiter = RateLimiter(config.initial_rate, config.rate_delta_ms)
        self.receive = ReceiveRateTracker(config.rate_delta_ms, config.ewma_alpha)
        self.sent = ReceiveRateTracker(config.rate_delta_ms, config.ewma_alpha)
        self.saturation_rate = config.initial_rate
        self.last_decrease_at = 0.0
        self.last_increase_at = 0.0
        self.increases = 0
        self.decreases = 0
        self.history: list[RateControlEvent] = []
        self.record_history = False

    # ---------------------------------------------------------------- actions
    @property
    def srate(self) -> float:
        """Current sending-rate limit (requests per δ window)."""
        return self.limiter.rate

    def rrate(self, now: float) -> float:
        """Current smoothed receive rate (responses per δ window)."""
        return self.receive.rate(now)

    def within_rate(self, now: float) -> bool:
        """Whether a request may be sent to this server right now."""
        return self.limiter.within_rate(now)

    def try_acquire(self, now: float) -> bool:
        """Consume a send permit if the limiter allows it."""
        granted = self.limiter.try_acquire(now)
        if granted:
            self.sent.record_response(now)
        return granted

    def send_rate(self, now: float) -> float:
        """Achieved send rate (requests per δ window)."""
        return self.sent.rate(now)

    def time_until_available(self, now: float) -> float:
        """Milliseconds until a permit will be available again."""
        return self.limiter.time_until_available(now)

    def on_response(self, now: float) -> None:
        """Update the rate from a response arriving at ``now`` (Algorithm 2)."""
        self.receive.record_response(now)
        srate = self.limiter.rate
        rrate = self.receive.rate(now)
        hysteresis = self.config.effective_hysteresis_ms
        send_rate = self.sent.rate(now)
        falling_behind = send_rate > rrate * self.config.rate_excess_tolerance
        limit_in_play = send_rate >= self.config.rate_min_utilisation * srate
        if (
            srate > rrate
            and falling_behind
            and limit_in_play
            and (now - self.last_increase_at) > hysteresis
        ):
            self._decrease(now, srate)
        elif srate < rrate:
            self._increase(now, srate)

    # --------------------------------------------------------------- internal
    def _decrease(self, now: float, srate: float) -> None:
        self.saturation_rate = srate
        new_rate = max(self.config.min_rate, srate * self.config.beta)
        self.limiter.rate = new_rate
        self.last_decrease_at = now
        self.decreases += 1
        if self.record_history:
            self.history.append(
                RateControlEvent(now, self.server_id, "decrease", srate, new_rate, self.saturation_rate)
            )

    def _increase(self, now: float, srate: float) -> None:
        elapsed = now - self.last_decrease_at
        gamma = self.config.effective_gamma(self.saturation_rate)
        target = cubic_rate(elapsed, self.saturation_rate, self.config.beta, gamma)
        new_rate = min(srate + self.config.smax, target)
        if self.config.max_rate is not None:
            new_rate = min(new_rate, self.config.max_rate)
        new_rate = max(new_rate, self.config.min_rate)
        if new_rate <= srate:
            return
        self.limiter.rate = new_rate
        self.last_increase_at = now
        self.increases += 1
        if self.record_history:
            self.history.append(
                RateControlEvent(now, self.server_id, "increase", srate, new_rate, self.saturation_rate)
            )


class PerServerRateControl:
    """A collection of :class:`CubicRateController`, one per server."""

    def __init__(self, config: C3Config, record_history: bool = False) -> None:
        self.config = config
        self.record_history = record_history
        self._controllers: dict[Hashable, CubicRateController] = {}

    def controller(self, server_id: Hashable) -> CubicRateController:
        """Return (creating if necessary) the controller for ``server_id``."""
        ctrl = self._controllers.get(server_id)
        if ctrl is None:
            ctrl = CubicRateController(self.config, server_id)
            ctrl.record_history = self.record_history
            self._controllers[server_id] = ctrl
        return ctrl

    def __contains__(self, server_id: Hashable) -> bool:
        return server_id in self._controllers

    def __iter__(self):
        return iter(self._controllers.values())

    def __len__(self) -> int:
        return len(self._controllers)

    def within_rate(self, server_id: Hashable, now: float) -> bool:
        """Whether the per-server limiter currently admits a send."""
        return self.controller(server_id).within_rate(now)

    def try_acquire(self, server_id: Hashable, now: float) -> bool:
        """Consume a send permit for ``server_id`` if available."""
        return self.controller(server_id).try_acquire(now)

    def on_response(self, server_id: Hashable, now: float) -> None:
        """Feed a response event into the matching controller."""
        self.controller(server_id).on_response(now)

    def rates(self) -> dict[Hashable, float]:
        """Snapshot of current sending rates (requests per δ window)."""
        return {sid: ctrl.srate for sid, ctrl in self._controllers.items()}

    def earliest_availability(self, server_ids, now: float) -> float:
        """Smallest wait (ms) until any of ``server_ids`` admits a request."""
        waits = [self.controller(sid).time_until_available(now) for sid in server_ids]
        return min(waits) if waits else 0.0
