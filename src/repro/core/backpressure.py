"""Backpressure queues — per-replica-group request backlogs (§3.2/§4).

When every replica of a request's replica group has exceeded its rate limit,
the C3 scheduler retains the request in a backlog queue until at least one
replica is within its rate again.  The reference implementation keeps one
backlog (one Akka actor mailbox) per replica group so that one saturated
group cannot head-of-line block the others; :class:`BackpressureQueues`
mirrors that structure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

__all__ = ["BacklogEntry", "BacklogQueue", "BackpressureQueues"]


@dataclass(slots=True)
class BacklogEntry:
    """A request waiting for a rate-limit permit.

    Attributes
    ----------
    request:
        The opaque request object supplied by the caller.
    replica_group:
        The candidate servers for the request.
    enqueued_at:
        Time the request entered the backlog (milliseconds).
    attempts:
        Number of times the scheduler tried (and failed) to place the request.
    """

    request: object
    replica_group: tuple
    enqueued_at: float
    attempts: int = 0


class BacklogQueue:
    """A FIFO backlog for one replica group."""

    def __init__(self, group_key: Hashable) -> None:
        self.group_key = group_key
        self._entries: deque[BacklogEntry] = deque()
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.max_depth = 0
        self.total_wait_ms = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, entry: BacklogEntry) -> None:
        """Append an entry to the backlog."""
        self._entries.append(entry)
        self.total_enqueued += 1
        self.max_depth = max(self.max_depth, len(self._entries))

    def peek(self) -> BacklogEntry | None:
        """The oldest waiting entry, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def pop(self, now: float | None = None) -> BacklogEntry:
        """Remove and return the oldest entry, recording its wait time."""
        if not self._entries:
            raise IndexError("pop from an empty backlog queue")
        entry = self._entries.popleft()
        self.total_dequeued += 1
        if now is not None:
            self.total_wait_ms += max(0.0, now - entry.enqueued_at)
        return entry

    def requeue_front(self, entry: BacklogEntry) -> None:
        """Put an entry back at the head (it could still not be placed)."""
        entry.attempts += 1
        self._entries.appendleft(entry)

    @property
    def mean_wait_ms(self) -> float:
        """Mean backlog wait over all dequeued entries (0 when none)."""
        if self.total_dequeued == 0:
            return 0.0
        return self.total_wait_ms / self.total_dequeued

    def drain(self) -> list[BacklogEntry]:
        """Remove and return every waiting entry (used at shutdown)."""
        drained = list(self._entries)
        self._entries.clear()
        return drained


class BackpressureQueues:
    """The set of per-replica-group backlogs owned by one client.

    Replica groups are keyed by the frozenset of their member server ids, so
    the same three replicas always map onto the same backlog regardless of
    the order in which the membership list arrives.
    """

    def __init__(self) -> None:
        self._queues: dict[Hashable, BacklogQueue] = {}
        self.backpressure_events = 0

    @staticmethod
    def group_key(replica_group: Iterable[Hashable]) -> frozenset:
        """Canonical key for a replica group."""
        key = frozenset(replica_group)
        if not key:
            raise ValueError("replica_group must not be empty")
        return key

    def queue_for(self, replica_group: Iterable[Hashable]) -> BacklogQueue:
        """Return (creating if needed) the backlog for ``replica_group``."""
        key = self.group_key(replica_group)
        queue = self._queues.get(key)
        if queue is None:
            queue = BacklogQueue(key)
            self._queues[key] = queue
        return queue

    def enqueue(self, request: object, replica_group: Iterable[Hashable], now: float) -> BacklogEntry:
        """Park a request that could not be placed; returns its entry."""
        group = tuple(replica_group)
        entry = BacklogEntry(request=request, replica_group=group, enqueued_at=now)
        self.queue_for(group).push(entry)
        self.backpressure_events += 1
        return entry

    def pending(self) -> int:
        """Total requests currently waiting across all groups."""
        return sum(len(q) for q in self._queues.values())

    def nonempty_queues(self) -> list[BacklogQueue]:
        """All backlogs that currently hold at least one request."""
        return [q for q in self._queues.values() if q]

    def queues(self) -> list[BacklogQueue]:
        """All backlogs ever created (including currently empty ones)."""
        return list(self._queues.values())

    def drain_ready(
        self,
        now: float,
        can_place: Callable[[BacklogEntry, float], Hashable | None],
        max_requests: int | None = None,
    ) -> list[tuple[BacklogEntry, Hashable]]:
        """Release backlog entries that can now be placed.

        Parameters
        ----------
        now:
            Current time (milliseconds).
        can_place:
            Callback invoked with ``(entry, now)``; it must return the chosen
            server id (and perform any permit accounting) or ``None`` when the
            entry still cannot be placed.
        max_requests:
            Optional cap on the number of entries released in this pass.

        Returns
        -------
        list of ``(entry, server_id)`` pairs for every request released.
        """
        released: list[tuple[BacklogEntry, Hashable]] = []
        for queue in self._queues.values():
            while queue:
                if max_requests is not None and len(released) >= max_requests:
                    return released
                entry = queue.peek()
                assert entry is not None
                server_id = can_place(entry, now)
                if server_id is None:
                    break
                queue.pop(now)
                released.append((entry, server_id))
        return released

    def stats(self) -> dict:
        """Aggregate backlog statistics for reporting."""
        queues = list(self._queues.values())
        return {
            "groups": len(queues),
            "pending": self.pending(),
            "backpressure_events": self.backpressure_events,
            "total_enqueued": sum(q.total_enqueued for q in queues),
            "total_dequeued": sum(q.total_dequeued for q in queues),
            "max_depth": max((q.max_depth for q in queues), default=0),
            "mean_wait_ms": (
                sum(q.total_wait_ms for q in queues) / sum(q.total_dequeued for q in queues)
                if any(q.total_dequeued for q in queues)
                else 0.0
            ),
        }
