"""Time-varying server performance models (§6) — compatibility re-exports.

The three historical fluctuation processes now live in
:mod:`repro.scenarios.processes` as the primitives of the general scenario
engine; this module re-exports them so paper-era imports
(``from repro.simulator.fluctuation import BimodalFluctuation``) keep
working.  New code should compose scenarios
(:mod:`repro.scenarios`) instead of instantiating processes directly:

* :class:`BimodalFluctuation` ↔ the ``bimodal`` scenario /
  :class:`~repro.scenarios.components.BimodalServiceRates` component;
* :class:`LatencyInflation` ↔ the ``slow-node`` scenario /
  :class:`~repro.scenarios.components.SlowServers` component;
* :class:`TransientSlowdowns` ↔ the ``gc-storm`` scenario /
  :class:`~repro.scenarios.components.GCPauses` component.

All three gained a ``stop()`` method that cancels pending events and
restores nominal server speeds, which makes ``EventLoop.clear()`` reuse safe
even when a perturbation fires exactly at the simulation horizon.
"""

from __future__ import annotations

from ..scenarios.processes import BimodalFluctuation, LatencyInflation, TransientSlowdowns

__all__ = ["BimodalFluctuation", "LatencyInflation", "TransientSlowdowns"]
