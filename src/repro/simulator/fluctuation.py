"""Time-varying server performance models (§6).

The paper's simulator flips each server, every ``T`` ms (the *fluctuation
interval*), between its nominal service rate μ and a degraded/boosted rate
μ·D with uniform probability, yielding a bimodal performance distribution.
:class:`BimodalFluctuation` reproduces that; :class:`LatencyInflation`
models the targeted ``tc``-style slowdowns of §5 (Figure 13); and
:class:`TransientSlowdowns` produces Poisson-arriving slow periods (GC-pause
like) for robustness experiments.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .engine import EventLoop
from .server import SimServer

__all__ = ["BimodalFluctuation", "LatencyInflation", "TransientSlowdowns"]


class BimodalFluctuation:
    """Every ``interval_ms``, each server independently picks one of two modes.

    Parameters
    ----------
    loop:
        Event loop to schedule the periodic mode switches on.
    servers:
        Servers whose speed is driven by this process.
    interval_ms:
        The fluctuation interval ``T``.
    rate_multiplier:
        The ``D`` parameter: the alternative mode's service *rate* is
        ``D × μ`` (so its service time is ``1/D`` of nominal).  The paper uses
        ``D = 3``.
    fast_probability:
        Probability of picking the ``D×`` mode at each flip (0.5 in the paper,
        i.e. uniform).
    rng:
        Random generator used for the independent per-server coin flips.
    """

    def __init__(
        self,
        loop: EventLoop,
        servers: Sequence[SimServer],
        interval_ms: float = 100.0,
        rate_multiplier: float = 3.0,
        fast_probability: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if not 0.0 <= fast_probability <= 1.0:
            raise ValueError("fast_probability must be in [0, 1]")
        self.loop = loop
        self.servers = list(servers)
        self.interval_ms = float(interval_ms)
        self.rate_multiplier = float(rate_multiplier)
        self.fast_probability = float(fast_probability)
        self.rng = rng or np.random.default_rng()
        self.flips = 0
        self._started = False

    @property
    def mean_service_rate_factor(self) -> float:
        """The average rate multiplier ``(1 + D)/2`` used for sizing load."""
        return (1.0 + self.rate_multiplier) / 2.0

    def start(self) -> None:
        """Apply an initial mode to every server and begin flipping."""
        if self._started:
            return
        self._started = True
        self._flip()

    def _flip(self) -> None:
        for server in self.servers:
            if self.rng.random() < self.fast_probability:
                server.set_service_rate_multiplier(self.rate_multiplier)
            else:
                server.set_service_rate_multiplier(1.0)
            self.flips += 1
        self.loop.schedule(self.interval_ms, self._flip)


class LatencyInflation:
    """Deterministic, scripted slow-downs of specific servers.

    Used to reproduce the Figure 13 experiment where a tracked node's
    latencies are artificially inflated three times during a run.

    Parameters
    ----------
    loop / server:
        Event loop and the server to manipulate.
    episodes:
        Iterable of ``(start_ms, end_ms, slowdown_factor)`` tuples; during
        each episode the server's service time is multiplied by the factor.
    """

    def __init__(
        self,
        loop: EventLoop,
        server: SimServer,
        episodes: Iterable[tuple[float, float, float]],
    ) -> None:
        self.loop = loop
        self.server = server
        self.episodes = sorted(episodes)
        for start, end, factor in self.episodes:
            if end <= start:
                raise ValueError(f"episode end must follow start: {(start, end)}")
            if factor <= 0:
                raise ValueError("slowdown factor must be positive")
        self.active_episodes = 0

    def start(self) -> None:
        """Schedule all episodes."""
        for start, end, factor in self.episodes:
            self.loop.schedule_at(start, self._begin, factor)
            self.loop.schedule_at(end, self._end)

    def _begin(self, factor: float) -> None:
        self.active_episodes += 1
        self.server.set_service_time_multiplier(factor)

    def _end(self) -> None:
        self.active_episodes = max(0, self.active_episodes - 1)
        if self.active_episodes == 0:
            self.server.set_service_time_multiplier(1.0)


class TransientSlowdowns:
    """Poisson-arriving transient slowdowns (GC-pause-like events).

    Each affected server is slowed by ``slowdown_factor`` for an
    exponentially distributed duration.  Events arrive per server as a
    Poisson process with the given mean inter-arrival time.
    """

    def __init__(
        self,
        loop: EventLoop,
        servers: Sequence[SimServer],
        mean_interarrival_ms: float = 5000.0,
        mean_duration_ms: float = 200.0,
        slowdown_factor: float = 4.0,
        rng: np.random.Generator | None = None,
        on_event: Callable[[SimServer, float, float], None] | None = None,
    ) -> None:
        if mean_interarrival_ms <= 0 or mean_duration_ms <= 0:
            raise ValueError("mean durations must be positive")
        if slowdown_factor <= 0:
            raise ValueError("slowdown_factor must be positive")
        self.loop = loop
        self.servers = list(servers)
        self.mean_interarrival_ms = float(mean_interarrival_ms)
        self.mean_duration_ms = float(mean_duration_ms)
        self.slowdown_factor = float(slowdown_factor)
        self.rng = rng or np.random.default_rng()
        self.on_event = on_event
        self.events = 0

    def start(self) -> None:
        """Schedule the first slowdown for every server."""
        for server in self.servers:
            self._schedule_next(server)

    def _schedule_next(self, server: SimServer) -> None:
        gap = float(self.rng.exponential(self.mean_interarrival_ms))
        self.loop.schedule(gap, self._begin, server)

    def _begin(self, server: SimServer) -> None:
        duration = float(self.rng.exponential(self.mean_duration_ms))
        server.set_service_time_multiplier(self.slowdown_factor)
        self.events += 1
        if self.on_event is not None:
            self.on_event(server, self.loop.now, duration)
        self.loop.schedule(duration, self._end, server)

    def _end(self, server: SimServer) -> None:
        server.set_service_time_multiplier(1.0)
        self._schedule_next(server)
