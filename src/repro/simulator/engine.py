"""A minimal discrete-event simulation engine.

The paper's §6 evaluation uses a purpose-built discrete-event simulator
("absim"); this module provides the equivalent substrate from scratch: a
priority-queue driven event loop with cancellable timers.  Time is a float in
milliseconds throughout the code base.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event loop."""


class Event:
    """A scheduled callback.

    Events are created via :meth:`EventLoop.schedule` /
    :meth:`EventLoop.schedule_at` and may be cancelled before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple, kwargs: dict) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name}, cancelled={self.cancelled})"


class EventLoop:
    """A deterministic single-threaded event loop.

    Events scheduled for the same time fire in scheduling order (FIFO), which
    keeps runs reproducible for a fixed random seed.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` to run at absolute time ``time`` ms."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(float(time), next(self._seq), callback, args, kwargs)
        heapq.heappush(self._heap, event)
        return event

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Fire the next pending (non-cancelled) event.

        Returns True if an event fired, False when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed by
        this call.
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and (not self._heap or self._heap[0].time > until):
                # Advance the clock to the requested horizon even if the last
                # event fired earlier, so periodic observers see a full window.
                self._now = max(self._now, until)
        finally:
            self._running = False
        return fired

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Run until no events remain (or ``max_events`` fired)."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop every pending event (used between test scenarios)."""
        self._heap.clear()
