"""A minimal discrete-event simulation engine.

The paper's §6 evaluation uses a purpose-built discrete-event simulator
("absim"); this module provides the equivalent substrate from scratch: a
priority-queue driven event loop with cancellable timers.  Time is a float in
milliseconds throughout the code base.

Two hot-path details matter at scale:

* The heap stores ``(time, seq, event)`` tuples rather than :class:`Event`
  objects, so every sift comparison is a C-level tuple comparison instead of
  a Python-level ``__lt__`` call (``seq`` is unique, so the ``event`` slot is
  never compared).
* Cancellation is lazy: a cancelled event stays in the heap (popping from
  the middle of a binary heap is O(n)) and is discarded when it reaches the
  top.  Workloads that cancel aggressively — speculative retries, timeout
  timers that almost always get cancelled — can accumulate a large fraction
  of dead entries, inflating every subsequent push/pop by the extra heap
  depth.  The loop therefore tracks the number of cancelled-but-queued
  events and compacts the heap in place (filter + re-heapify, O(n)) once
  dead entries exceed half of a sufficiently large heap, which keeps the
  amortised cost of cancellation O(log n) without ever changing observable
  event ordering.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["BatchedEventLoop", "Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event loop."""


class Event:
    """A scheduled callback.

    Events are created via :meth:`EventLoop.schedule` /
    :meth:`EventLoop.schedule_at` and may be cancelled before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple, kwargs: dict) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self._loop: "EventLoop | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name}, cancelled={self.cancelled})"


class EventLoop:
    """A deterministic single-threaded event loop.

    Events scheduled for the same time fire in scheduling order (FIFO), which
    keeps runs reproducible for a fixed random seed.
    """

    #: Heaps smaller than this are never compacted (filtering a tiny heap
    #: costs more in constant factors than the dead entries do).
    COMPACT_MIN_SIZE = 64
    #: Compact when cancelled entries exceed this fraction of the heap.
    COMPACT_DEAD_FRACTION = 0.5

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap entries are (time, seq, event): see the module docstring.
        self._heap: list[tuple[float, int, Event]] = []
        # Next FIFO sequence number.  A plain int (incremented inline) rather
        # than an itertools.count object: the batched kernel shares this
        # counter by reading/writing the attribute directly, and the inline
        # increment shaves the C-call overhead off every scheduled event.
        self._seq = 0
        self._processed = 0
        self._running = False
        self._dead = 0  # cancelled events still sitting in the heap

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that are not cancelled."""
        return len(self._heap) - self._dead

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` to run at absolute time ``time`` ms."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(float(time), seq, callback, args, kwargs)
        event._loop = self
        heapq.heappush(self._heap, (event.time, seq, event))
        return event

    # ------------------------------------------------------------ compaction
    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`."""
        self._dead += 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_SIZE and self._dead > len(heap) * self.COMPACT_DEAD_FRACTION:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving (time, seq) order.

        Mutates ``self._heap`` in place so that aliases held by a running
        :meth:`run` loop stay valid.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Fire the next pending (non-cancelled) event.

        Returns True if an event fired, False when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            event._loop = None
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed by
        this call.
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run())")
        self._running = True
        fired = 0
        # The inner loop is the simulator's hottest path (one iteration per
        # simulated event); keep bound-method and module lookups out of it.
        heap = self._heap
        heappop = heapq.heappop
        unbounded = max_events is None
        try:
            while heap:
                if not unbounded and fired >= max_events:
                    break
                time, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    event._loop = None
                    self._dead -= 1
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                event._loop = None
                self._now = time
                self._processed += 1
                fired += 1
                event.callback(*event.args, **event.kwargs)
            if until is not None and (not heap or heap[0][0] > until):
                # Advance the clock to the requested horizon even if the last
                # event fired earlier, so periodic observers see a full window.
                self._now = max(self._now, until)
        finally:
            self._running = False
        return fired

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Run until no events remain (or ``max_events`` fired)."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop every pending event and reset the loop for reuse.

        Besides emptying the heap this resets the drained-heap bookkeeping
        (cancelled-entry count, fired-event counter, FIFO sequence counter)
        so a loop can be safely reused between scenarios.  The re-entrancy
        guard is left alone: ``run()`` owns it via try/finally — even a
        callback calling ``clear()`` mid-run must not open the door to a
        nested ``run()``.  The clock is also intentionally left where it is:
        callers that want a fresh timeline should build a fresh
        :class:`EventLoop`.
        """
        for entry in self._heap:
            entry[2]._loop = None
        self._heap.clear()
        self._dead = 0
        self._processed = 0
        self._seq = 0


class BatchedEventLoop(EventLoop):
    """An :class:`EventLoop` whose heap may also hold *typed* entries.

    The batched simulator kernel (:mod:`repro.simulator.kernel`) pushes plain
    tuples ``(time, seq, code, a, b, c)`` — where ``code`` is a small int —
    onto the heap alongside ordinary ``(time, seq, Event)`` entries, and runs
    its own dispatch loop over both.  Because ``seq`` is unique, tuple
    comparison never reaches the third slot, so the two entry shapes order
    correctly against each other.  Only compaction needs to care: it must
    not assume every entry carries an :class:`Event`.

    :meth:`step`/:meth:`run` are inherited unchanged — they are only safe
    while the heap holds pure ``Event`` entries (before the kernel starts or
    after it drains), which is how the kernel uses them.
    """

    def _compact(self) -> None:
        self._heap[:] = [
            entry
            for entry in self._heap
            if not (isinstance(entry[2], Event) and entry[2].cancelled)
        ]
        heapq.heapify(self._heap)
        self._dead = 0
