"""The flat discrete-event simulation substrate (§6 of the paper)."""

from .engine import Event, EventLoop, SimulationError
from .fluctuation import BimodalFluctuation, LatencyInflation, TransientSlowdowns
from .metrics import METRICS_MODES, MetricsCollector, SimulationResult, WindowedCounter
from .network import ConstantLatency, JitteredLatency, LognormalLatency, NetworkModel
from .request import Request, RequestKind
from .server import SimServer
from .simulation import ReplicaSelectionSimulation, SimulationConfig, run_simulation
from .client import SimClient
from .workload import DemandSkew, PoissonArrivalProcess, WorkloadGenerator, replica_groups

__all__ = [
    "BimodalFluctuation",
    "METRICS_MODES",
    "ConstantLatency",
    "DemandSkew",
    "Event",
    "EventLoop",
    "JitteredLatency",
    "LatencyInflation",
    "LognormalLatency",
    "MetricsCollector",
    "NetworkModel",
    "PoissonArrivalProcess",
    "ReplicaSelectionSimulation",
    "Request",
    "RequestKind",
    "SimClient",
    "SimServer",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "TransientSlowdowns",
    "WindowedCounter",
    "WorkloadGenerator",
    "replica_groups",
    "run_simulation",
]
