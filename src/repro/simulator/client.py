"""Simulated client nodes.

A client owns one :class:`~repro.strategies.base.ReplicaSelector` and drives
it: it submits incoming requests, dispatches them over the (simulated)
network, issues read-repair duplicates, retries backpressured requests when
permits free up, and feeds responses (with their piggy-backed feedback) back
into the selector.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from ..core.feedback import ServerFeedback
from ..strategies.base import ReplicaSelector
from .engine import Event, EventLoop
from .metrics import MetricsCollector
from .network import NetworkModel
from .request import Request, RequestKind
from .server import DownServerTracker, SimServer

__all__ = ["SimClient"]

#: Minimum delay before re-checking a backpressured backlog (ms).
_MIN_RETRY_MS = 0.1

#: Delay before re-trying requests parked because every replica was down (ms).
_PARKED_RETRY_MS = 5.0


class SimClient:
    """A client node in the flat simulator.

    Parameters
    ----------
    loop:
        Shared event loop.
    client_id:
        Stable identifier.
    selector:
        The replica-selection strategy instance owned by this client.
    servers:
        Mapping from server id to :class:`SimServer` (used for dispatch).
    network:
        Network latency model.
    metrics:
        Shared metrics collector.
    read_repair_probability:
        Probability that a read is duplicated to every other replica of its
        group (Cassandra's default of 10 % is used throughout the paper).
    rng:
        Random generator (read-repair coin flips).
    down_tracker:
        Shared crashed-server count (scenario fault injection).  When any
        server is down the client filters dead replicas out of the candidate
        set before replica selection; when the whole group is down the
        request is parked and retried until a replica returns.  ``None``
        disables all liveness checks.
    """

    def __init__(
        self,
        loop: EventLoop,
        client_id: Hashable,
        selector: ReplicaSelector,
        servers: Mapping[Hashable, SimServer],
        network: NetworkModel,
        metrics: MetricsCollector,
        read_repair_probability: float = 0.1,
        rng: np.random.Generator | None = None,
        down_tracker: DownServerTracker | None = None,
    ) -> None:
        if not 0.0 <= read_repair_probability <= 1.0:
            raise ValueError("read_repair_probability must be in [0, 1]")
        self.loop = loop
        self.client_id = client_id
        self.selector = selector
        self.servers = servers
        self.network = network
        self.metrics = metrics
        self.read_repair_probability = read_repair_probability
        self.rng = rng or np.random.default_rng()
        self.down_tracker = down_tracker

        self._retry_event: Event | None = None
        self._parked: list[Request] = []
        self._parked_event: Event | None = None
        self.requests_handled = 0
        self.responses_handled = 0
        self.read_repairs_issued = 0
        self.requests_parked = 0

    # -------------------------------------------------------------- entry point
    def on_request(self, request: Request) -> None:
        """Handle a newly generated request."""
        self.requests_handled += 1
        self.metrics.on_issue(request)
        self._submit(request)

    def _submit(self, request: Request) -> None:
        """Route a request through liveness filtering and replica selection."""
        now = self.loop.now
        candidates = request.replica_group
        if self.down_tracker is not None and self.down_tracker.count:
            live = tuple(sid for sid in candidates if self.servers[sid].is_up)
            if not live:
                self._park(request)
                return
            candidates = live
        decision = self.selector.submit(request, candidates, now)
        if decision.sent:
            self._dispatch(request, decision.server_id)
            self._maybe_read_repair(request)
        else:
            request.backpressured = True
            self.metrics.on_backpressure()
            self._schedule_retry(decision.retry_after_ms)

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, request: Request, server_id: Hashable) -> None:
        server = self.servers[server_id]
        if self.down_tracker is not None and self.down_tracker.count and not server.is_up:
            # A selector-internal placement (backlog drain) raced with a
            # crash: release the selector's accounting and park the request
            # for a fresh selection once a replica is back.
            self.selector.on_timeout(server_id, self.loop.now)
            self._park(request)
            return
        now = self.loop.now
        request.mark_dispatched(now, server_id)
        delay = self.network.one_way_delay(self.client_id, server_id)
        self.loop.schedule(delay, server.enqueue, request)

    def _maybe_read_repair(self, request: Request) -> None:
        """With probability p, duplicate the read to all other replicas.

        The duplicates add server load and produce feedback (which lets the
        coordinator refresh its view of every peer, per §4) but do not count
        towards the latency distribution.
        """
        if request.kind != RequestKind.READ or request.is_duplicate:
            return
        if self.read_repair_probability <= 0.0:
            return
        if self.rng.random() >= self.read_repair_probability:
            return
        down = self.down_tracker is not None and self.down_tracker.count
        for server_id in request.replica_group:
            if server_id == request.server_id:
                continue
            if down and not self.servers[server_id].is_up:
                continue
            duplicate = Request.create(
                client_id=self.client_id,
                replica_group=request.replica_group,
                created_at=self.loop.now,
                kind=RequestKind.READ_REPAIR,
                key=request.key,
                record_size=request.record_size,
                parent_id=request.request_id,
            )
            self.metrics.on_issue(duplicate)
            self.selector.on_duplicate_send(server_id, self.loop.now)
            self._dispatch(duplicate, server_id)
            self.read_repairs_issued += 1

    # ----------------------------------------------------------------- responses
    def on_server_response(self, request: Request, feedback: ServerFeedback, service_time: float) -> None:
        """Handle a response arriving back at the client."""
        now = self.loop.now
        self.responses_handled += 1
        request.mark_completed(now)
        response_time = (
            now - request.dispatched_at if request.dispatched_at is not None else now - request.created_at
        )
        released = self.selector.on_response(request.server_id, feedback, response_time, now)
        self.metrics.on_complete(request, now)
        for pending_request, server_id in released:
            self._dispatch(pending_request, server_id)
            self._maybe_read_repair(pending_request)
        if self.selector.pending_backlog() > 0:
            self._schedule_retry(self.selector.next_retry_ms(now) or _MIN_RETRY_MS)

    # -------------------------------------------------------------------- parking
    def _park(self, request: Request) -> None:
        """Hold a request whose every live routing option is gone.

        Parked requests are re-submitted every ``_PARKED_RETRY_MS`` until a
        replica restarts (or the simulation's time cap ends the run); each
        park counts as a backpressure event.
        """
        request.backpressured = True
        self.metrics.on_backpressure()
        self.requests_parked += 1
        self._parked.append(request)
        if self._parked_event is None or self._parked_event.cancelled:
            self._parked_event = self.loop.schedule(_PARKED_RETRY_MS, self._retry_parked)

    def _retry_parked(self) -> None:
        self._parked_event = None
        parked, self._parked = self._parked, []
        for request in parked:
            self._submit(request)

    # -------------------------------------------------------------------- retries
    def _schedule_retry(self, delay_ms: float) -> None:
        if self._retry_event is not None and not self._retry_event.cancelled:
            return
        delay = max(float(delay_ms), _MIN_RETRY_MS)
        self._retry_event = self.loop.schedule(delay, self._retry_backlog)

    def _retry_backlog(self) -> None:
        self._retry_event = None
        now = self.loop.now
        released = self.selector.drain_backlog(now)
        for request, server_id in released:
            self._dispatch(request, server_id)
            self._maybe_read_repair(request)
        if self.selector.pending_backlog() > 0:
            retry = self.selector.next_retry_ms(now)
            self._schedule_retry(retry if retry is not None else 1.0)

    # ---------------------------------------------------------------- observation
    def stats(self) -> dict:
        """Client-level counters plus the selector's own statistics."""
        return {
            "client_id": self.client_id,
            "requests_handled": self.requests_handled,
            "responses_handled": self.responses_handled,
            "read_repairs_issued": self.read_repairs_issued,
            "requests_parked": self.requests_parked,
            "selector": self.selector.stats(),
        }
