"""Simulated client nodes.

A client owns one :class:`~repro.strategies.base.ReplicaSelector` and drives
it: it submits incoming requests, dispatches them over the (simulated)
network, issues read-repair duplicates, retries backpressured requests when
permits free up, and feeds responses (with their piggy-backed feedback) back
into the selector.

Liveness knowledge is mediated by a pluggable failure detector (see
:mod:`repro.controls.detectors`): the default
:class:`~repro.controls.detectors.BinaryFailureDetector` reproduces the
legacy ground-truth down/up checks byte-for-byte, while
``failure_detector="phi:threshold=8"`` switches to phi-accrual suspicion
fed by response-arrival heartbeats.  An optional hedging policy
(:class:`~repro.controls.hedging.QuantileHedging`) re-issues slow reads to
another replica after the configured latency quantile; the first response
wins and the straggler is swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

import numpy as np

from ..controls.detectors import BinaryFailureDetector, FailureDetector
from ..controls.hedging import QuantileHedging
from ..core.feedback import ServerFeedback
from ..strategies.base import ReplicaSelector
from .engine import Event, EventLoop
from .metrics import MetricsCollector
from .network import NetworkModel
from .request import Request, RequestKind
from .server import DownServerTracker, SimServer

__all__ = ["SimClient"]

#: Minimum delay before re-checking a backpressured backlog (ms).
_MIN_RETRY_MS = 0.1

#: Delay before re-trying requests parked because every replica was down (ms).
_PARKED_RETRY_MS = 5.0


@dataclass(slots=True)
class _HedgedRead:
    """Book-keeping for one read with a pending or fired hedge."""

    primary: Request
    used: set
    fired: int = 0
    done: bool = False
    event: Event | None = None


class SimClient:
    """A client node in the flat simulator.

    Parameters
    ----------
    loop:
        Shared event loop.
    client_id:
        Stable identifier.
    selector:
        The replica-selection strategy instance owned by this client.
    servers:
        Mapping from server id to :class:`SimServer` (used for dispatch).
    network:
        Network latency model.
    metrics:
        Shared metrics collector.
    read_repair_probability:
        Probability that a read is duplicated to every other replica of its
        group (Cassandra's default of 10 % is used throughout the paper).
    rng:
        Random generator (read-repair coin flips, hedge target choice).
    down_tracker:
        Shared crashed-server count (scenario fault injection), used by
        read repair and — via the default binary detector — liveness checks.
    failure_detector:
        Shared :class:`~repro.controls.detectors.FailureDetector` consulted
        before replica selection and dispatch.  ``None`` builds the legacy
        :class:`BinaryFailureDetector` over ``down_tracker``/``servers``
        (which disables all filtering when ``down_tracker`` is ``None``).
    hedging:
        Optional hedging policy: reads still pending after the policy's
        latency-quantile threshold are re-issued to a different live
        replica.  ``None`` (the default) hedges nothing.
    """

    def __init__(
        self,
        loop: EventLoop,
        client_id: Hashable,
        selector: ReplicaSelector,
        servers: Mapping[Hashable, SimServer],
        network: NetworkModel,
        metrics: MetricsCollector,
        read_repair_probability: float = 0.1,
        rng: np.random.Generator | None = None,
        down_tracker: DownServerTracker | None = None,
        failure_detector: FailureDetector | None = None,
        hedging: QuantileHedging | None = None,
        id_source: Iterator[int] | None = None,
    ) -> None:
        if not 0.0 <= read_repair_probability <= 1.0:
            raise ValueError("read_repair_probability must be in [0, 1]")
        self.loop = loop
        self.client_id = client_id
        self.selector = selector
        self.servers = servers
        self.network = network
        self.metrics = metrics
        self.read_repair_probability = read_repair_probability
        self.rng = rng or np.random.default_rng()
        self.down_tracker = down_tracker
        self.failure_detector: FailureDetector = (
            failure_detector
            if failure_detector is not None
            else BinaryFailureDetector(down_tracker, servers)
        )
        self.hedging = hedging
        self._id_source = id_source

        self._retry_event: Event | None = None
        self._parked: list[Request] = []
        self._parked_event: Event | None = None
        self._hedge_ops: dict[int, _HedgedRead] = {}
        self._hedge_by_copy: dict[int, int] = {}
        self.requests_handled = 0
        self.responses_handled = 0
        self.read_repairs_issued = 0
        self.requests_parked = 0
        self.hedges_fired = 0
        self.hedges_won = 0

    # -------------------------------------------------------------- entry point
    def on_request(self, request: Request) -> None:
        """Handle a newly generated request."""
        self.requests_handled += 1
        self.metrics.on_issue(request)
        self._submit(request)

    def _submit(self, request: Request) -> None:
        """Route a request through liveness filtering and replica selection."""
        now = self.loop.now
        candidates = request.replica_group
        if self.failure_detector.suspicious():
            live = tuple(sid for sid in candidates if self.failure_detector.is_alive(sid, now))
            if not live:
                self._park(request)
                return
            candidates = live
        decision = self.selector.submit(request, candidates, now)
        if decision.sent:
            self._dispatch(request, decision.server_id)
            self._maybe_read_repair(request)
            self._maybe_schedule_hedge(request)
        else:
            request.backpressured = True
            self.metrics.on_backpressure()
            self._schedule_retry(decision.retry_after_ms)

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, request: Request, server_id: Hashable) -> None:
        now = self.loop.now
        if self.failure_detector.suspicious() and not self.failure_detector.is_alive(server_id, now):
            # A selector-internal placement (backlog drain) raced with a
            # crash: release the selector's accounting and park the request
            # for a fresh selection once a replica is back.
            self.selector.on_timeout(server_id, now)
            self._park(request)
            return
        request.mark_dispatched(now, server_id)
        delay = self.network.one_way_delay(self.client_id, server_id)
        self.loop.schedule(delay, self.servers[server_id].enqueue, request)

    def _maybe_read_repair(self, request: Request) -> None:
        """With probability p, duplicate the read to all other replicas.

        The duplicates add server load and produce feedback (which lets the
        coordinator refresh its view of every peer, per §4) but do not count
        towards the latency distribution.  Read repair deliberately keeps
        using ground-truth crash knowledge (``down_tracker``) rather than
        the configured failure detector: connection-refused knowledge is
        immediate in Cassandra, and the resulting duplicates are the probe
        traffic that lets a suspicion-based detector observe a recovered
        (or merely slow) replica and un-suspect it.
        """
        if request.kind != RequestKind.READ or request.is_duplicate:
            return
        if self.read_repair_probability <= 0.0:
            return
        if self.rng.random() >= self.read_repair_probability:
            return
        down = self.down_tracker is not None and self.down_tracker.count
        for server_id in request.replica_group:
            if server_id == request.server_id:
                continue
            if down and not self.servers[server_id].is_up:
                continue
            duplicate = Request.create(
                client_id=self.client_id,
                replica_group=request.replica_group,
                created_at=self.loop.now,
                kind=RequestKind.READ_REPAIR,
                key=request.key,
                record_size=request.record_size,
                parent_id=request.request_id,
                id_source=self._id_source,
            )
            self.metrics.on_issue(duplicate)
            self.selector.on_duplicate_send(server_id, self.loop.now)
            self._dispatch(duplicate, server_id)
            self.read_repairs_issued += 1

    # ------------------------------------------------------------------- hedging
    def _maybe_schedule_hedge(self, request: Request) -> None:
        """Arm the hedge timer for a freshly dispatched primary read."""
        if self.hedging is None:
            return
        if request.kind != RequestKind.READ or request.is_duplicate:
            return
        if request.server_id is None or request.request_id in self._hedge_ops:
            return
        threshold = self.hedging.threshold_ms()
        if threshold is None:
            return
        op = _HedgedRead(primary=request, used={request.server_id})
        op.event = self.loop.schedule(threshold, self._fire_hedge, request.request_id)
        self._hedge_ops[request.request_id] = op

    def _fire_hedge(self, primary_id: int) -> None:
        """Issue one extra copy of a still-pending read to a fresh replica."""
        op = self._hedge_ops.get(primary_id)
        if op is None or op.done or self.hedging is None:
            return
        op.event = None
        now = self.loop.now
        primary = op.primary
        candidates = tuple(
            sid
            for sid in primary.replica_group
            if sid not in op.used and self.failure_detector.is_alive(sid, now)
        )
        if not candidates:
            # Every unused replica is currently suspect (e.g. a transient
            # full-group crash).  Keep the timer armed while budget remains
            # so hedging resumes once a replica recovers, instead of being
            # permanently disarmed for this request.
            self._rearm_hedge(op, primary_id)
            return
        target = candidates[int(self.rng.integers(len(candidates)))]
        duplicate = Request.create(
            client_id=self.client_id,
            replica_group=primary.replica_group,
            created_at=now,
            kind=RequestKind.SPECULATIVE,
            key=primary.key,
            record_size=primary.record_size,
            parent_id=primary.request_id,
            id_source=self._id_source,
        )
        op.used.add(target)
        op.fired += 1
        self._hedge_by_copy[duplicate.request_id] = primary_id
        self.metrics.on_issue(duplicate)
        self.hedges_fired += 1
        self.selector.on_duplicate_send(target, now)
        self._dispatch(duplicate, target)
        self._rearm_hedge(op, primary_id)

    def _rearm_hedge(self, op: _HedgedRead, primary_id: int) -> None:
        """Re-schedule the hedge timer while the policy's budget remains."""
        assert self.hedging is not None
        if op.fired < self.hedging.max_extra:
            threshold = self.hedging.threshold_ms()
            if threshold is not None:
                op.event = self.loop.schedule(threshold, self._fire_hedge, primary_id)

    def _hedge_complete(self, request: Request, response_time: float, now: float) -> None:
        """First-response-wins completion accounting for hedged reads.

        Exactly one client-visible completion is recorded per primary
        request: either its own response, or — when a hedge copy answers
        first — the copy's arrival (the straggling primary response is then
        swallowed, though its feedback still reached the selector).  Server
        load, in contrast, is attributed per *response*: every replica that
        actually answers is credited in the window of its own response.
        """
        policy = self.hedging
        assert policy is not None
        # Server load is credited when the serving replica actually responds
        # — winner, loser, and straggler alike — so the Fig. 8/9 windowed
        # load series reflect real server activity under hedging instead of
        # shifting the primary's completion into the hedge-win window.
        self.metrics.on_server_complete(request, now)
        primary_id = self._hedge_by_copy.pop(request.request_id, None)
        if primary_id is not None:
            op = self._hedge_ops.get(primary_id)
            if op is None or op.done:
                return
            # First response wins: complete the operation now.  The op entry
            # stays behind (done=True) so the straggling primary response is
            # recognised and swallowed; its server load is still credited —
            # at its actual arrival time — by the on_server_complete above.
            op.done = True
            if op.event is not None:
                op.event.cancel()
            self.hedges_won += 1
            op.primary.mark_completed(now)
            if op.primary.dispatched_at is not None:
                policy.record(now - op.primary.dispatched_at)
            self.metrics.on_client_complete(op.primary)
            return
        op = self._hedge_ops.pop(request.request_id, None)
        if op is not None:
            if op.done:
                # A copy already completed this operation; the primary's
                # straggler response is swallowed (latency-wise — its load
                # contribution was recorded above).
                return
            if op.event is not None:
                op.event.cancel()
        if request.kind == RequestKind.READ and not request.is_duplicate:
            policy.record(response_time)
        self.metrics.on_client_complete(request)

    # ----------------------------------------------------------------- responses
    def on_server_response(self, request: Request, feedback: ServerFeedback, service_time: float) -> None:
        """Handle a response arriving back at the client."""
        now = self.loop.now
        self.responses_handled += 1
        self.failure_detector.heartbeat(request.server_id, now)
        request.mark_completed(now)
        response_time = (
            now - request.dispatched_at if request.dispatched_at is not None else now - request.created_at
        )
        released = self.selector.on_response(request.server_id, feedback, response_time, now)
        if self.hedging is not None:
            self._hedge_complete(request, response_time, now)
        else:
            self.metrics.on_complete(request, now)
        for pending_request, server_id in released:
            self._dispatch(pending_request, server_id)
            self._maybe_read_repair(pending_request)
            self._maybe_schedule_hedge(pending_request)
        if self.selector.pending_backlog() > 0:
            self._schedule_retry(self.selector.next_retry_ms(now) or _MIN_RETRY_MS)

    # -------------------------------------------------------------------- parking
    def _park(self, request: Request) -> None:
        """Hold a request whose every live routing option is gone.

        Parked requests are re-submitted every ``_PARKED_RETRY_MS`` until a
        replica restarts (or the simulation's time cap ends the run); each
        park counts as a backpressure event.
        """
        request.backpressured = True
        self.metrics.on_backpressure()
        self.requests_parked += 1
        self._parked.append(request)
        if self._parked_event is None or self._parked_event.cancelled:
            self._parked_event = self.loop.schedule(_PARKED_RETRY_MS, self._retry_parked)

    def _retry_parked(self) -> None:
        self._parked_event = None
        parked, self._parked = self._parked, []
        for request in parked:
            self._submit(request)

    # -------------------------------------------------------------------- retries
    def _schedule_retry(self, delay_ms: float) -> None:
        if self._retry_event is not None and not self._retry_event.cancelled:
            return
        delay = max(float(delay_ms), _MIN_RETRY_MS)
        self._retry_event = self.loop.schedule(delay, self._retry_backlog)

    def _retry_backlog(self) -> None:
        self._retry_event = None
        now = self.loop.now
        released = self.selector.drain_backlog(now)
        for request, server_id in released:
            self._dispatch(request, server_id)
            self._maybe_read_repair(request)
            self._maybe_schedule_hedge(request)
        if self.selector.pending_backlog() > 0:
            retry = self.selector.next_retry_ms(now)
            self._schedule_retry(retry if retry is not None else 1.0)

    # ---------------------------------------------------------------- observation
    def stats(self) -> dict:
        """Client-level counters plus the selector's own statistics."""
        return {
            "client_id": self.client_id,
            "requests_handled": self.requests_handled,
            "responses_handled": self.responses_handled,
            "read_repairs_issued": self.read_repairs_issued,
            "requests_parked": self.requests_parked,
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
            "selector": self.selector.stats(),
        }
