"""End-to-end assembly of the §6 flat simulation.

:class:`SimulationConfig` captures the parameters of one run (number of
servers/clients, utilization, fluctuation interval, strategy, …) with
defaults matching the paper;  :class:`ReplicaSelectionSimulation` wires the
servers, clients, selectors, fluctuation process and workload generator
together and runs the event loop until every generated request completes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Mapping

import numpy as np

from ..controls import ControlSpec
from ..core.config import C3Config
from ..strategies import StrategySpec
from .client import SimClient
from .engine import BatchedEventLoop, EventLoop
from .fluctuation import BimodalFluctuation
from .metrics import METRICS_MODES, MetricsCollector, SimulationResult
from .network import ConstantLatency, NetworkModel
from .request import Request
from .server import DownServerTracker, SimServer
from .workload import DemandSkew, WorkloadGenerator, replica_groups

__all__ = ["KERNELS", "RNGS", "SimulationConfig", "ReplicaSelectionSimulation", "run_simulation"]

#: Valid values of ``SimulationConfig.kernel``.
KERNELS = ("object", "batched")

#: Valid values of ``SimulationConfig.rng`` (random-draw regimes).  Each
#: regime is a separate digest domain: within a regime, object and batched
#: kernels are digest-identical; across regimes the RNG streams occupy
#: different positions, so results legitimately differ.
RNGS = ("v1", "block")


@dataclass(slots=True)
class SimulationConfig:
    """Parameters of one flat-simulator run.

    The defaults mirror §6 of the paper, scaled down in request count so a
    run completes in seconds: 50 servers, RF 3, 4-way service concurrency,
    exponential service times with a 4 ms mean, 0.25 ms one-way network
    latency, 10 % read repair, bimodal service-rate fluctuation with D = 3.

    A named ``scenario`` (see :mod:`repro.scenarios`) replaces the legacy
    bimodal fluctuation fields with a composable perturbation schedule;
    ``scenario_params`` overrides that scenario's knobs.

    ``metrics_mode`` selects how latencies are collected: ``"exact"``
    (per-request lists, exact summaries — the default) or ``"streaming"``
    (fixed-memory log-bucketed histograms with relative error
    ``histogram_relative_error`` — the scale-mode path for long-horizon /
    million-request runs).

    ``strategy`` accepts a registered name (``"C3"``), a parameterized spec
    string (``"c3:cubic_c=4e-4,b=3"``), a mapping (``{"name": "c3",
    "params": {...}}``), or a :class:`~repro.strategies.StrategySpec`; it is
    normalized to the canonical spec string at construction, so bare names
    stay byte-identical in payloads, cache keys, and golden digests.

    ``kernel`` selects the event-processing engine: ``"object"`` (the
    default — Event objects calling client/server methods) or ``"batched"``
    (the typed-tuple hot-path kernel in :mod:`repro.simulator.kernel`,
    several times faster and digest-identical by construction).

    ``rng`` selects the random-draw regime: ``"v1"`` (the default — scalar
    per-arrival/per-decision Generator calls, byte-identical to every
    pre-existing digest and cache key) or ``"block"`` (workload trio and
    selector draws served from block-drawn variates — several µs cheaper
    per request, digest-identical across kernels but a *different digest
    domain* than ``"v1"`` because the stream positions move).

    ``failure_detector`` and ``hedging`` address registered controls (see
    :mod:`repro.controls`) through the same spec grammar.  The defaults —
    the ``"binary"`` ground-truth detector and no hedging — reproduce the
    legacy simulator byte-for-byte; ``failure_detector="phi:threshold=8"``
    switches liveness to phi-accrual suspicion and
    ``hedging="hedge:quantile=0.95"`` re-issues slow reads to another
    replica at the configured latency quantile.
    """

    num_servers: int = 50
    replication_factor: int = 3
    num_clients: int = 150
    num_requests: int = 20_000
    mean_service_time_ms: float = 4.0
    server_concurrency: int = 4
    utilization: float = 0.7
    fluctuation_interval_ms: float = 100.0
    fluctuation_multiplier: float = 3.0
    fluctuation_enabled: bool = True
    network_delay_ms: float = 0.25
    read_repair_probability: float = 0.1
    strategy: "str | Mapping[str, Any] | StrategySpec" = "C3"
    seed: int = 0
    scenario: str | None = None
    scenario_params: dict = field(default_factory=dict)
    demand_skew: DemandSkew | None = None
    record_size: int = 1024
    read_fraction: float = 1.0
    c3_config: C3Config | None = None
    arrival_rate_per_ms: float | None = None
    max_sim_time_ms: float = 600_000.0
    load_window_ms: float = 100.0
    record_rate_history: bool = False
    metrics_mode: str = "exact"
    histogram_relative_error: float = 0.01
    failure_detector: "str | Mapping[str, Any] | ControlSpec" = "binary"
    hedging: "str | Mapping[str, Any] | ControlSpec | None" = None
    kernel: str = "object"
    rng: str = "v1"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize any accepted strategy form to the canonical spec string
        # (validating the name and params in the process): "c3" -> "C3",
        # "c3:cubic_c=2e-4" -> "C3:gamma=0.0002", bare names unchanged.
        self.strategy = StrategySpec.parse(self.strategy).canonical()
        # Control references normalize the same way; the defaults ("binary"
        # detection, no hedging) are additionally omitted from runner
        # payloads so legacy cache keys and digests stay stable.
        self.failure_detector = ControlSpec.parse(self.failure_detector, kind="detector").canonical()
        if self.hedging is not None:
            self.hedging = ControlSpec.parse(self.hedging, kind="hedge").canonical()
        if self.num_servers < self.replication_factor:
            raise ValueError("num_servers must be >= replication_factor")
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        if not 0.0 < self.utilization <= 1.5:
            raise ValueError("utilization must be in (0, 1.5]")
        if self.mean_service_time_ms <= 0:
            raise ValueError("mean_service_time_ms must be positive")
        if self.metrics_mode not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics_mode {self.metrics_mode!r}; choose one of {METRICS_MODES}"
            )
        if not 0.0 < self.histogram_relative_error < 1.0:
            raise ValueError("histogram_relative_error must be in (0, 1)")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; choose one of {KERNELS}")
        if self.rng not in RNGS:
            raise ValueError(f"unknown rng {self.rng!r}; choose one of {RNGS}")
        if self.scenario is not None:
            from ..scenarios.registry import validate_scenario

            validate_scenario(self.scenario, self.scenario_params)
        elif self.scenario_params:
            raise ValueError("scenario_params given without a scenario name")

    @property
    def strategy_spec(self) -> StrategySpec:
        """The canonical :class:`StrategySpec` of this run's strategy."""
        return StrategySpec.parse(self.strategy)

    @property
    def failure_detector_spec(self) -> ControlSpec:
        """The canonical :class:`ControlSpec` of this run's failure detector."""
        return ControlSpec.parse(self.failure_detector, kind="detector")

    @property
    def hedging_spec(self) -> ControlSpec | None:
        """The canonical :class:`ControlSpec` of the hedging policy, if any."""
        if self.hedging is None:
            return None
        return ControlSpec.parse(self.hedging, kind="hedge")

    @property
    def effective_rate_multiplier(self) -> float:
        """Average per-slot service-rate multiplier under the active perturbation.

        With a named scenario, the scenario declares its own factor (see
        :func:`repro.scenarios.registry.scenario_rate_factor`); otherwise the
        legacy bimodal-fluctuation fields apply.
        """
        if self.scenario is not None:
            from ..scenarios.registry import scenario_rate_factor

            return scenario_rate_factor(self)
        if not self.fluctuation_enabled:
            return 1.0
        return (1.0 + self.fluctuation_multiplier) / 2.0

    @property
    def system_capacity_per_ms(self) -> float:
        """Mean system service capacity in requests per millisecond."""
        per_slot_rate = self.effective_rate_multiplier / self.mean_service_time_ms
        return self.num_servers * self.server_concurrency * per_slot_rate

    @property
    def target_arrival_rate_per_ms(self) -> float:
        """Arrival rate implied by the utilization (unless overridden)."""
        if self.arrival_rate_per_ms is not None:
            return self.arrival_rate_per_ms
        return self.utilization * self.system_capacity_per_ms

    def copy(self, **overrides) -> "SimulationConfig":
        """A copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)


class ReplicaSelectionSimulation:
    """Builds and runs one flat-simulator scenario."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.loop = BatchedEventLoop() if config.kernel == "batched" else EventLoop()
        self.rng = np.random.default_rng(config.seed)
        self.metrics = MetricsCollector(
            window_ms=config.load_window_ms,
            metrics_mode=config.metrics_mode,
            histogram_relative_error=config.histogram_relative_error,
        )
        self.network: NetworkModel = ConstantLatency(config.network_delay_ms)

        self.servers: dict[Hashable, SimServer] = {}
        self.clients: list[SimClient] = []
        self.groups = replica_groups(config.num_servers, config.replication_factor)
        self.down_tracker = DownServerTracker()
        self.fluctuation: BimodalFluctuation | None = None
        self.scenario = None  # Scenario instance when config.scenario is set
        self._scenario_ctx = None
        self.generator: WorkloadGenerator | None = None
        self._build()

    # ---------------------------------------------------------------- assembly
    def _build(self) -> None:
        cfg = self.config
        # Per-simulation request-id counter: ids always start at 0 for a
        # run, so pooled workers that reuse a process hand out exactly the
        # ids a fresh serial run would (reproducible traces/artifacts).
        self._request_ids = itertools.count()
        server_cls = SimServer
        if cfg.kernel == "batched":
            from .kernel import KernelServer

            server_cls = KernelServer
        for sid in range(cfg.num_servers):
            server_rng = np.random.default_rng(self.rng.integers(2**63))
            server = server_cls(
                loop=self.loop,
                server_id=sid,
                base_service_time_ms=cfg.mean_service_time_ms,
                concurrency=cfg.server_concurrency,
                rng=server_rng,
                on_complete=None,
                down_tracker=self.down_tracker,
            )
            server.on_complete = self._make_completion_handler()
            self.servers[sid] = server

        c3_config = cfg.c3_config or C3Config().with_clients(cfg.num_clients)
        strategy_spec = cfg.strategy_spec
        # One detector instance serves every client (liveness is cluster-wide
        # knowledge); hedging policies are per-client, like the coordinator's
        # speculative-retry windows.  Neither construction draws randomness,
        # so the RNG child-stream order below is unchanged from the legacy
        # build and seeds stay digest-compatible.
        self.failure_detector = cfg.failure_detector_spec.build(
            down_tracker=self.down_tracker, servers=self.servers
        )
        hedging_spec = cfg.hedging_spec
        block_rngs = cfg.rng == "block"
        if block_rngs:
            from .workload import BlockRNG
        for cid in range(cfg.num_clients):
            selector_rng = np.random.default_rng(self.rng.integers(2**63))
            if block_rngs:
                # Selector draws come from the same child stream, but served
                # through the block adapter — identical on both kernels, a
                # different digest domain than the scalar regime.
                selector_rng = BlockRNG(selector_rng)
            selector = strategy_spec.build(
                rng=selector_rng,
                server_state_fn=self._server_state,
                record_rate_history=cfg.record_rate_history,
                c3_config=c3_config,
            )
            client_rng = np.random.default_rng(self.rng.integers(2**63))
            client = SimClient(
                loop=self.loop,
                client_id=cid,
                selector=selector,
                servers=self.servers,
                network=self.network,
                metrics=self.metrics,
                read_repair_probability=cfg.read_repair_probability,
                rng=client_rng,
                down_tracker=self.down_tracker,
                failure_detector=self.failure_detector,
                hedging=hedging_spec.build() if hedging_spec is not None else None,
                id_source=self._request_ids,
            )
            self.clients.append(client)

        scenario_rng = None
        if cfg.scenario is not None:
            # A named scenario replaces the legacy fluctuation process
            # entirely (its RNG stream occupies the same draw slot, so the
            # workload stream that follows stays aligned across modes).
            scenario_rng = np.random.default_rng(self.rng.integers(2**63))
            from ..scenarios import build_scenario

            self.scenario = build_scenario(cfg)
        elif cfg.fluctuation_enabled:
            fluct_rng = np.random.default_rng(self.rng.integers(2**63))
            self.fluctuation = BimodalFluctuation(
                loop=self.loop,
                servers=list(self.servers.values()),
                interval_ms=cfg.fluctuation_interval_ms,
                rate_multiplier=cfg.fluctuation_multiplier,
                rng=fluct_rng,
            )

        workload_rng = np.random.default_rng(self.rng.integers(2**63))
        self.generator = WorkloadGenerator(
            loop=self.loop,
            clients=self.clients,
            groups=self.groups,
            rate_per_ms=cfg.target_arrival_rate_per_ms,
            total_requests=cfg.num_requests,
            demand_skew=cfg.demand_skew,
            read_fraction=cfg.read_fraction,
            record_size=cfg.record_size,
            rng=workload_rng,
            id_source=self._request_ids,
            rng_regime=cfg.rng,
        )

        if self.scenario is not None:
            from ..scenarios import ScenarioContext

            self._scenario_ctx = ScenarioContext(
                loop=self.loop,
                servers=[self.servers[sid] for sid in range(cfg.num_servers)],
                config=cfg,
                rng=scenario_rng,
                simulation=self,
            )

    def _make_completion_handler(self):
        def on_complete(request: Request, feedback, service_time: float) -> None:
            client = self.clients[self._client_index(request.client_id)]
            delay = self.network.one_way_delay(request.server_id, request.client_id)
            self.loop.schedule(delay, client.on_server_response, request, feedback, service_time)

        return on_complete

    def _client_index(self, client_id: Hashable) -> int:
        # Client ids are assigned densely (0..n-1) by _build.
        return int(client_id)

    def _server_state(self, server_id: Hashable) -> tuple[float, float]:
        server = self.servers[server_id]
        return (server.pending_requests, server.current_service_time_ms)

    # --------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Run the scenario to completion and return the collected metrics."""
        cfg = self.config
        if cfg.kernel == "batched":
            from .kernel import BatchedKernel

            return BatchedKernel(self).run()
        if self.scenario is not None:
            self.scenario.start(self._scenario_ctx)
        elif self.fluctuation is not None:
            self.fluctuation.start()
        assert self.generator is not None
        self.generator.start()

        # Perturbation processes may schedule events forever, so the loop is
        # advanced in slices until every data request has completed (or the
        # hard time cap is hit, which indicates an unstable configuration).
        slice_ms = max(10.0, cfg.fluctuation_interval_ms)
        while (
            self.metrics.completed_requests < cfg.num_requests
            and self.loop.now < cfg.max_sim_time_ms
        ):
            self.loop.run(until=self.loop.now + slice_ms)

        duration = self.loop.now
        if self.scenario is not None:
            # Symmetric teardown: restores server speeds/liveness so loop or
            # server objects can be inspected or reused after the run.
            self.scenario.stop()
        extra = {
            "config": cfg,
            "clients": len(self.clients),
            "servers": len(self.servers),
            "backlog_remaining": sum(c.selector.pending_backlog() for c in self.clients),
            "parked_remaining": sum(len(c._parked) for c in self.clients),
            "scenario": cfg.scenario,
        }
        return self.metrics.result(duration_ms=duration, strategy=cfg.strategy, extra=extra)


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Convenience helper: build and run a scenario in one call."""
    return ReplicaSelectionSimulation(config).run()
