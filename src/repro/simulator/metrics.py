"""Metric collection for simulation runs.

The collector gathers per-request latencies, per-server windowed load counts
(requests served per 100 ms window — the measurement underlying Figures 2, 8
and 9), throughput, and backpressure counters, and produces the summary
statistics reported throughout the paper (mean, median, 95th, 99th, 99.9th
percentiles).

Two metric modes exist (``SimulationConfig.metrics_mode``):

* ``"exact"`` (the default) appends every completed request's latency to a
  list, exactly as the original collector did — summaries are exact and
  the result digest is byte-identical to the pre-streaming implementation,
  so every pinned golden digest is unchanged.
* ``"streaming"`` records latencies into fixed-memory log-bucketed
  histograms (:class:`~repro.analysis.histogram.LatencyHistogram`) instead
  of lists: memory is O(buckets) regardless of horizon, p50–p99.9 are
  within the histogram's relative-error bound of exact, and the result
  carries its own deterministic digest (distinct from exact mode's).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..analysis.histogram import LatencyHistogram
from ..analysis.percentiles import EMPTY_SUMMARY, LatencySummary, summarize
from .request import Request, RequestKind

__all__ = ["METRICS_MODES", "WindowedCounter", "MetricsCollector", "SimulationResult"]

#: Valid values of ``SimulationConfig.metrics_mode``.
METRICS_MODES = ("exact", "streaming")


class WindowedCounter:
    """Counts events in fixed-size time windows (default 100 ms)."""

    def __init__(self, window_ms: float = 100.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._counts: dict[int, int] = defaultdict(int)

    def record(self, time_ms: float, count: int = 1) -> None:
        """Record ``count`` events at ``time_ms``."""
        if time_ms < 0:
            raise ValueError("time_ms must be non-negative")
        self._counts[int(time_ms // self.window_ms)] += count

    def record_batch(self, times_ms: np.ndarray) -> None:
        """Record one event at each time in ``times_ms`` (vectorized scatter).

        Equivalent to ``for t in times_ms: self.record(t)`` — the window
        index is the same floor division — but the bucketing happens in
        numpy: one ``//``, one :func:`numpy.unique`, and one dict update per
        *distinct window* instead of per event.  The batched simulator
        kernel accumulates per-server completion times in flat arrays and
        flushes them through here at end of run.
        """
        if times_ms.size == 0:
            return
        if float(times_ms.min()) < 0:
            raise ValueError("time_ms must be non-negative")
        windows, counts = np.unique(
            (times_ms // self.window_ms).astype(np.int64), return_counts=True
        )
        sparse = self._counts
        for window, count in zip(windows.tolist(), counts.tolist()):
            sparse[window] += count

    def counts(self, horizon_ms: float | None = None) -> np.ndarray:
        """Dense per-window counts from window 0 to the last observed window.

        ``horizon_ms`` extends the series with trailing zero windows up to the
        given time, which keeps series from different runs comparable.
        """
        if not self._counts and horizon_ms is None:
            return np.zeros(0, dtype=int)
        last = max(self._counts) if self._counts else -1
        if horizon_ms is not None:
            last = max(last, int(horizon_ms // self.window_ms) - 1)
        dense = np.zeros(last + 1, dtype=int)
        if self._counts:
            # Vectorized scatter: the sparse dict only holds windows that saw
            # events, so materialization cost is O(nonzero) + one allocation
            # instead of a Python loop over the whole horizon.
            windows = np.fromiter(self._counts.keys(), dtype=np.int64, count=len(self._counts))
            values = np.fromiter(self._counts.values(), dtype=np.int64, count=len(self._counts))
            in_range = windows <= last
            dense[windows[in_range]] = values[in_range]
        return dense

    def series(self, horizon_ms: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """``(window_start_times, counts)`` arrays."""
        counts = self.counts(horizon_ms)
        times = np.arange(len(counts)) * self.window_ms
        return times, counts

    def total(self) -> int:
        """Total events recorded."""
        return int(sum(self._counts.values()))


@dataclass
class SimulationResult:
    """The outcome of a simulation run.

    Only completed, non-duplicate data requests contribute to the latency
    distribution (read-repair and speculative duplicates add load but are not
    user-visible completions), matching how the paper measures latency.
    """

    latencies_ms: np.ndarray
    read_latencies_ms: np.ndarray
    write_latencies_ms: np.ndarray
    duration_ms: float
    completed_requests: int
    issued_requests: int
    duplicate_requests: int
    backpressure_events: int
    server_load_series: dict[Hashable, np.ndarray]
    window_ms: float
    per_server_completed: dict[Hashable, int]
    strategy: str = ""
    extra: dict = field(default_factory=dict)
    metrics_mode: str = "exact"
    latency_histogram: LatencyHistogram | None = None
    read_latency_histogram: LatencyHistogram | None = None
    write_latency_histogram: LatencyHistogram | None = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the run."""
        if self.duration_ms <= 0:
            return 0.0
        return self.completed_requests / (self.duration_ms / 1000.0)

    @property
    def summary(self) -> LatencySummary:
        """Latency summary over all completed data requests.

        Exact in ``exact`` mode; within the histogram's relative-error
        bound in ``streaming`` mode.
        """
        if self.metrics_mode == "streaming":
            if self.latency_histogram is None:
                return EMPTY_SUMMARY
            return self.latency_histogram.summarize()
        return summarize(self.latencies_ms)

    @property
    def read_summary(self) -> LatencySummary:
        """Latency summary over completed reads only."""
        if self.metrics_mode == "streaming":
            if self.read_latency_histogram is None:
                return EMPTY_SUMMARY
            return self.read_latency_histogram.summarize()
        return summarize(self.read_latencies_ms)

    def digest(self) -> str:
        """A content hash over everything the simulation measured.

        Two runs of the same configuration and seed must produce the same
        digest — this is what the determinism regression suite asserts, and
        what the sweep runner records so serial and process-pool execution
        can be compared byte-for-byte without shipping raw latency arrays
        around.  The ``extra`` dict is deliberately excluded: it carries
        run metadata (config object, host details), not measurements.

        Exact mode hashes the raw latency arrays and dense load series —
        byte-identical to the pre-streaming implementation, so pinned golden
        digests are stable.  Streaming mode hashes the histogram states and
        the load series in *sparse* form under a distinct domain prefix:
        the hash input is O(buckets + nonzero windows) — latency-array-free
        — and can never collide with an exact-mode digest of the same run.
        (The load series themselves are still materialized densely, one
        entry per ``window_ms`` of horizon; that is O(duration), independent
        of request count.)
        """
        if self.metrics_mode == "streaming":
            return self._streaming_digest()
        h = hashlib.sha256()
        for arr in (self.latencies_ms, self.read_latencies_ms, self.write_latencies_ms):
            h.update(np.ascontiguousarray(arr, dtype=float).tobytes())
        h.update(self._counter_fingerprint())
        for sid in sorted(self.server_load_series, key=repr):
            h.update(repr(sid).encode())
            h.update(np.ascontiguousarray(self.server_load_series[sid]).tobytes())
        h.update(repr(sorted(self.per_server_completed.items(), key=lambda kv: repr(kv[0]))).encode())
        return h.hexdigest()

    def _counter_fingerprint(self) -> bytes:
        """The scalar-counter portion shared by both digest flavors."""
        return repr(
            (
                round(self.duration_ms, 9),
                self.completed_requests,
                self.issued_requests,
                self.duplicate_requests,
                self.backpressure_events,
                self.window_ms,
                self.strategy,
            )
        ).encode()

    def _streaming_digest(self) -> str:
        h = hashlib.sha256(b"streaming-metrics-v1")
        for hist in (self.latency_histogram, self.read_latency_histogram, self.write_latency_histogram):
            h.update(hist.digest().encode() if hist is not None else b"-")
        h.update(self._counter_fingerprint())
        for sid in sorted(self.server_load_series, key=repr):
            h.update(repr(sid).encode())
            series = np.ascontiguousarray(self.server_load_series[sid])
            nonzero = np.flatnonzero(series)
            h.update(nonzero.tobytes())
            h.update(series[nonzero].tobytes())
        h.update(repr(sorted(self.per_server_completed.items(), key=lambda kv: repr(kv[0]))).encode())
        return h.hexdigest()

    def hottest_server(self) -> Hashable | None:
        """The server that completed the most requests (Fig. 8/9 subject)."""
        if not self.per_server_completed:
            return None
        return max(self.per_server_completed, key=lambda sid: self.per_server_completed[sid])

    def hottest_server_series(self) -> np.ndarray:
        """Windowed load series of the hottest server."""
        hottest = self.hottest_server()
        if hottest is None:
            return np.zeros(0, dtype=int)
        return self.server_load_series.get(hottest, np.zeros(0, dtype=int))


class MetricsCollector:
    """Accumulates request completions and server load during a run.

    ``metrics_mode="exact"`` keeps per-request latency lists (O(requests)
    memory, exact summaries); ``metrics_mode="streaming"`` keeps
    log-bucketed histograms instead (O(buckets) memory — the latency lists
    are not even allocated).
    """

    def __init__(
        self,
        window_ms: float = 100.0,
        metrics_mode: str = "exact",
        histogram_relative_error: float = 0.01,
    ) -> None:
        if metrics_mode not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics_mode {metrics_mode!r}; choose one of {METRICS_MODES}"
            )
        self.window_ms = float(window_ms)
        self.metrics_mode = metrics_mode
        self.histogram_relative_error = float(histogram_relative_error)
        self._latencies: list[float] | None = None
        self._read_latencies: list[float] | None = None
        self._write_latencies: list[float] | None = None
        self._histogram: LatencyHistogram | None = None
        self._read_histogram: LatencyHistogram | None = None
        self._write_histogram: LatencyHistogram | None = None
        if metrics_mode == "streaming":
            self._histogram = LatencyHistogram(histogram_relative_error)
            self._read_histogram = LatencyHistogram(histogram_relative_error)
            self._write_histogram = LatencyHistogram(histogram_relative_error)
        else:
            self._latencies = []
            self._read_latencies = []
            self._write_latencies = []
        self._per_server_windows: dict[Hashable, WindowedCounter] = {}
        self._per_server_completed: dict[Hashable, int] = defaultdict(int)
        self.issued_requests = 0
        self.duplicate_requests = 0
        self.completed_requests = 0
        self.backpressure_events = 0

    def on_issue(self, request: Request) -> None:
        """Record that a request entered the system."""
        if request.is_duplicate:
            self.duplicate_requests += 1
        else:
            self.issued_requests += 1

    def on_backpressure(self) -> None:
        """Record one backpressure (backlog-enqueue) event."""
        self.backpressure_events += 1

    def on_complete(self, request: Request, now: float) -> None:
        """Record a completed request and its server-side load contribution.

        This is the non-hedged fast path: the serving replica answered and
        the client-visible completion happened at the same instant, so both
        sides are recorded together.  Hedged completions split the two —
        :meth:`on_server_complete` when a server actually responds (winner,
        straggler, or duplicate alike) and :meth:`on_client_complete` once
        at first-response-wins time.
        """
        self.on_server_complete(request, now)
        self.on_client_complete(request)

    def on_server_complete(self, request: Request, now: float) -> None:
        """Credit the serving server one windowed-load completion at ``now``."""
        server_id = request.server_id
        if server_id is not None:
            counter = self._per_server_windows.get(server_id)
            if counter is None:
                counter = WindowedCounter(self.window_ms)
                self._per_server_windows[server_id] = counter
            counter.record(now)
            self._per_server_completed[server_id] += 1

    def on_client_complete(self, request: Request) -> None:
        """Record the client-visible completion latency (no server credit).

        Duplicates (read repair, speculative copies) never enter the latency
        distribution; incomplete requests are ignored.
        """
        if request.is_duplicate:
            return
        latency = request.latency
        if latency is None:
            return
        self.completed_requests += 1
        if self.metrics_mode == "streaming":
            assert self._histogram is not None  # streaming mode always allocates
            assert self._read_histogram is not None and self._write_histogram is not None
            self._histogram.record(latency)
            if request.kind == RequestKind.WRITE:
                self._write_histogram.record(latency)
            else:
                self._read_histogram.record(latency)
        else:
            assert self._latencies is not None  # exact mode always allocates
            assert self._read_latencies is not None and self._write_latencies is not None
            self._latencies.append(latency)
            if request.kind == RequestKind.WRITE:
                self._write_latencies.append(latency)
            else:
                self._read_latencies.append(latency)

    def result(self, duration_ms: float, strategy: str = "", extra: dict | None = None) -> SimulationResult:
        """Freeze the collected metrics into a :class:`SimulationResult`."""
        return SimulationResult(
            latencies_ms=np.asarray(self._latencies or (), dtype=float),
            read_latencies_ms=np.asarray(self._read_latencies or (), dtype=float),
            write_latencies_ms=np.asarray(self._write_latencies or (), dtype=float),
            duration_ms=float(duration_ms),
            completed_requests=self.completed_requests,
            issued_requests=self.issued_requests,
            duplicate_requests=self.duplicate_requests,
            backpressure_events=self.backpressure_events,
            server_load_series={
                sid: counter.counts(duration_ms) for sid, counter in self._per_server_windows.items()
            },
            window_ms=self.window_ms,
            per_server_completed=dict(self._per_server_completed),
            strategy=strategy,
            extra=dict(extra or {}),
            metrics_mode=self.metrics_mode,
            latency_histogram=self._histogram,
            read_latency_histogram=self._read_histogram,
            write_latency_histogram=self._write_histogram,
        )
