"""Network latency models for the simulated system.

The §6 simulations use a fixed one-way latency of 250 µs; the cluster
substrate also uses a jittered model so that EC2-like variance can be
explored.  Latencies are returned in milliseconds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NetworkModel", "ConstantLatency", "JitteredLatency", "LognormalLatency"]


class NetworkModel:
    """Base class: produces one-way network delays in milliseconds."""

    def one_way_delay(self, src=None, dst=None) -> float:
        """A single one-way delay sample (ms)."""
        raise NotImplementedError

    def round_trip_delay(self, src=None, dst=None) -> float:
        """A round-trip sample (two independent one-way draws)."""
        return self.one_way_delay(src, dst) + self.one_way_delay(dst, src)


class ConstantLatency(NetworkModel):
    """Fixed one-way latency (the paper's simulations use 0.25 ms)."""

    def __init__(self, delay_ms: float = 0.25) -> None:
        if delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        self.delay_ms = float(delay_ms)

    def one_way_delay(self, src=None, dst=None) -> float:
        return self.delay_ms


class JitteredLatency(NetworkModel):
    """Uniform jitter around a base latency: ``base ± jitter``."""

    def __init__(self, base_ms: float = 0.25, jitter_ms: float = 0.05, rng: np.random.Generator | None = None) -> None:
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        if jitter_ms > base_ms:
            raise ValueError("jitter must not exceed the base latency")
        self.base_ms = float(base_ms)
        self.jitter_ms = float(jitter_ms)
        self.rng = rng or np.random.default_rng()

    def one_way_delay(self, src=None, dst=None) -> float:
        if self.jitter_ms == 0:
            return self.base_ms
        return float(self.rng.uniform(self.base_ms - self.jitter_ms, self.base_ms + self.jitter_ms))


class LognormalLatency(NetworkModel):
    """Heavy-ish tailed latency (lognormal), for stress scenarios.

    Parameterised by the median and a sigma controlling the spread.
    """

    def __init__(self, median_ms: float = 0.25, sigma: float = 0.3, rng: np.random.Generator | None = None) -> None:
        if median_ms <= 0:
            raise ValueError("median_ms must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self.rng = rng or np.random.default_rng()

    def one_way_delay(self, src=None, dst=None) -> float:
        if self.sigma == 0:
            return self.median_ms
        return float(self.median_ms * np.exp(self.rng.normal(0.0, self.sigma)))
