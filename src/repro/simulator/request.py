"""Request records flowing through the simulated system."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterator

__all__ = ["Request", "RequestKind", "request_id_counter"]

#: Process-wide fallback id source.  Simulations pass their own per-run
#: counter (``id_source``) so request ids are reproducible run-to-run —
#: a pooled worker that reuses a process must hand out the same ids a
#: fresh serial run would.
request_id_counter = itertools.count()


class RequestKind:
    """Request categories used by the workload models."""

    READ = "read"
    WRITE = "write"
    READ_REPAIR = "read_repair"
    SPECULATIVE = "speculative"

    ALL = (READ, WRITE, READ_REPAIR, SPECULATIVE)


@dataclass(slots=True)
class Request:
    """A single client request.

    Attributes
    ----------
    request_id:
        Unique identifier within a run.
    client_id:
        Identifier of the client that issued the request.
    replica_group:
        Candidate servers able to serve the request.
    created_at:
        Time the request entered the system (ms).
    kind:
        One of :class:`RequestKind` values (read, write, read-repair
        duplicate, speculative retry duplicate).
    key:
        Optional data key (used by the cluster substrate and Zipfian
        workloads); ``None`` for the flat simulator.
    record_size:
        Payload size in bytes (drives the record-size experiments).
    dispatched_at / started_service_at / completed_at:
        Lifecycle timestamps filled in as the request progresses.
    server_id:
        The server that ultimately served the request.
    parent_id:
        For duplicates (read repair, speculative retry), the originating
        request's id.
    """

    request_id: int
    client_id: Hashable
    replica_group: tuple
    created_at: float
    kind: str = RequestKind.READ
    key: int | None = None
    record_size: int = 1024
    dispatched_at: float | None = None
    started_service_at: float | None = None
    completed_at: float | None = None
    server_id: Hashable | None = None
    parent_id: int | None = None
    backpressured: bool = False
    service_time: float | None = None
    attempts: int = 0
    metadata: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        client_id: Hashable,
        replica_group: tuple,
        created_at: float,
        kind: str = RequestKind.READ,
        key: int | None = None,
        record_size: int = 1024,
        parent_id: int | None = None,
        id_source: Iterator[int] | None = None,
    ) -> "Request":
        """Create a request with a fresh id from ``id_source``.

        ``id_source`` defaults to the process-global counter; simulations
        supply their own per-run counter for run-to-run reproducible ids.
        """
        return cls(
            request_id=next(id_source if id_source is not None else request_id_counter),
            client_id=client_id,
            replica_group=tuple(replica_group),
            created_at=created_at,
            kind=kind,
            key=key,
            record_size=record_size,
            parent_id=parent_id,
        )

    @property
    def latency(self) -> float | None:
        """End-to-end latency in ms, ``None`` while incomplete."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def queueing_delay(self) -> float | None:
        """Time between arriving at the server and entering service."""
        if self.started_service_at is None or self.dispatched_at is None:
            return None
        return self.started_service_at - self.dispatched_at

    @property
    def is_duplicate(self) -> bool:
        """True for read-repair / speculative copies of another request."""
        return self.parent_id is not None

    def mark_dispatched(self, now: float, server_id: Hashable) -> None:
        """Record dispatch to ``server_id`` at ``now``."""
        self.dispatched_at = now
        self.server_id = server_id
        self.attempts += 1

    def mark_completed(self, now: float) -> None:
        """Record completion at ``now`` — the first completion wins.

        Under hedging (first-response-wins) a straggling response for an
        already-completed request must not overwrite the winning timestamp:
        ``Request.latency`` has to agree with the latency the metrics
        recorded at win time.
        """
        if self.completed_at is None:
            self.completed_at = now
