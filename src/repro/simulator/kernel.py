"""Batched event-loop kernel for the flat simulator's hot path.

``SimulationConfig(kernel="batched")`` replaces the object-graph event flow
(`Event` objects calling ``SimClient``/``SimServer`` bound methods, one
``Request`` instance and one ``ServerFeedback`` per hop) with a single typed
dispatch loop:

* **Array-of-struct request state** — requests live in parallel Python
  lists (created/client/group/kind/parent/dispatched/server/completed)
  indexed by request id; no ``Request`` objects are allocated on the hot
  path.  Request ids are arena indices, which reproduces the per-simulation
  id counter of the object path exactly (both count creations from zero in
  the same order).
* **Typed heap entries** — the simulation's seven event kinds are plain
  tuples ``(time, seq, code, a, b, c)`` pushed onto the same heap that
  generic :class:`~repro.simulator.engine.Event` entries (scenario
  components, fluctuation processes) use.  ``seq`` is unique, so tuple
  comparison never reaches the mixed third slot.
* **Vectorized service draws** — each server consumes a pre-drawn block of
  standard-exponential variates on its own RNG stream
  (``rng.standard_exponential(n)`` advances the stream exactly as ``n``
  scalar ``rng.exponential(mean)`` calls do, and ``mean * e`` is bitwise
  equal to ``exponential(mean)``).
* **Batched selector scoring** — LOR and P2C score replica groups over
  contiguous per-client arrays (outstanding counts, queue-EWMA values)
  instead of defaultdict lookups, with end-of-run write-back through the
  selectors' ``kernel_state``/``kernel_restore`` seams.  C3 submits through
  :meth:`~repro.strategies.c3.C3Selector.kernel_submit`, which skips the
  ``SelectorDecision`` re-wrap.  Every other strategy runs through its
  normal selector methods (correct, less accelerated).
* **Batched metrics** — latencies accumulate in flat lists and per-server
  completion times flush through
  :meth:`~repro.simulator.metrics.WindowedCounter.record_batch` at end of
  run, replacing one dict update per completion with one scatter per
  distinct window.

Equivalence contract: for any config, ``kernel="batched"`` must produce a
result whose digest is byte-identical to ``kernel="object"`` — same RNG
draw order on every stream, same heap ordering, same float expressions (see
``tests/simulator/test_kernel_equivalence.py``).  Scenario components keep
working unmodified: they schedule generic events on the shared loop, and
mid-run mutations (crash/restore, speed multipliers, network swaps, arrival
rate changes) are read through the live server/network/process objects.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any

import numpy as np

from ..controls.detectors import BinaryFailureDetector
from ..core.feedback import ServerFeedback
from ..strategies.base import ReplicaSelector, StatefulSelector
from ..strategies.c3 import C3Selector
from ..strategies.least_outstanding import LeastOutstandingSelector
from ..strategies.power_of_two import PowerOfTwoSelector
from .client import _MIN_RETRY_MS, _PARKED_RETRY_MS
from .metrics import WindowedCounter
from .network import ConstantLatency
from .server import SimServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import SimulationResult
    from .simulation import ReplicaSelectionSimulation

__all__ = ["BatchedKernel", "KernelServer"]

# Typed heap-entry codes (slot 2 of a 6-tuple; generic entries carry an
# Event object there instead).
_ENQUEUE = 0  # (t, seq, 0, rid, sid, 0.0)      request arrives at server
_FINISH = 1  # (t, seq, 1, rid, sid, st)       service slot completes
_RESPONSE = 2  # (t, seq, 2, rid, qsize, stime)  response arrives at client
# Code 3 (workload arrival) is retired: at most one arrival is ever pending
# and arrival times are strictly increasing, so the kernel keeps the next
# arrival as scalar state (_arr_t/_arr_seq) instead of a heap entry.
_HEDGE = 4  # (t, seq, 4, cid, rid, 0.0)      hedge timer fires
_RETRY = 5  # (t, seq, 5, cid, 0, 0.0)        backlog retry timer
_PARKED = 6  # (t, seq, 6, cid, 0, 0.0)        parked-request retry timer

# Request kinds as small ints (order matches RequestKind usage: only the
# write/read split and duplicate-ness matter to metrics).
_READ = 0
_WRITE = 1
_READ_REPAIR = 2
_SPECULATIVE = 3

# Selector fast-path modes.
_LOR = 0
_P2C = 1
_STOCK = 2
_CUSTOM = 3
_C3 = 4

#: Sentinel "no pending arrival" time (compares after every real event).
_NEVER = float("inf")

#: Pre-drawn standard-exponential variates per server block.
_SVC_BLOCK = 512
#: Pre-drawn uniform variates per client block (read-repair coins).
_RR_BLOCK = 256

# _HedgedRead field indices (list-based for hot-path speed).
_OP_DONE = 0
_OP_FIRED = 1
_OP_USED = 2
_OP_ARMED = 3


class KernelServer(SimServer):
    """A :class:`SimServer` whose service starts are driven by the kernel.

    In kernel mode the FIFO queue holds request *ids* (ints) rather than
    ``Request`` objects, and service times come from a pre-drawn block of
    standard-exponential variates on the server's own RNG stream.
    ``_try_start_service`` is overridden because scenario components call it
    directly (``restore()`` at the end of a crash window must drain the
    queue that built up), and those starts must stay on the block stream.

    State observable mid-run — ``pending_requests``,
    ``current_service_time_ms``, crash/restore/speed-multiplier controls —
    is the live object state, so scenario components and the
    ``server_state_fn`` used by snitch-style selectors read exactly what the
    object path would show.  Write-only accounting (request/queue counters,
    busy time, the service-time EWMA) accumulates in kernel-local dense
    lists and is folded back into the object at the end of the run.
    """

    kernel: "BatchedKernel | None" = None
    _svc_block: Any = None  # np.ndarray block of standard-exponential draws
    _svc_i: int = 0

    def _try_start_service(self) -> None:
        kernel = self.kernel
        if kernel is None:
            super()._try_start_service()
        else:
            kernel.start_service(self)


class BatchedKernel:
    """Runs one :class:`ReplicaSelectionSimulation` through the typed loop."""

    def __init__(self, sim: "ReplicaSelectionSimulation") -> None:
        cfg = sim.config
        self.sim = sim
        self.loop = sim.loop
        # The kernel pushes 6-tuple entries onto the loop's Event heap and
        # duck-types the detector/metrics objects; those seams are typed Any
        # — the run-time invariants are pinned by the equivalence suites.
        self.heap: list[Any] = sim.loop._heap
        # Sequence numbers come from the loop's plain-int counter
        # (``loop._seq``), read/incremented inline at every draw site so the
        # kernel and any mid-run ``loop.schedule`` calls (fallback paths,
        # scenario components) share one globally unique, issuance-ordered
        # stream — exactly as when both held the same itertools.count object.
        self.metrics: Any = sim.metrics
        self.tracker = sim.down_tracker
        self.det: Any = sim.failure_detector
        self._binary = type(self.det) is BinaryFailureDetector

        self.servers: list[KernelServer] = []
        for sid in range(cfg.num_servers):
            server = sim.servers[sid]
            if not isinstance(server, KernelServer):
                raise TypeError(
                    "kernel='batched' requires KernelServer instances; build the "
                    "simulation with SimulationConfig(kernel='batched')"
                )
            server.kernel = self
            self.servers.append(server)
        # Dense caches of per-server state that is immutable after
        # construction (the deque entries cache the *objects*; their
        # contents stay live).  Dynamic state that anything outside the
        # kernel can observe or mutate mid-run (_up, _in_service,
        # multiplier, the queue contents) is always read through the server
        # object so scenario components and the snitch/oracle
        # ``server_state_fn`` see exactly what the object path would show.
        srv = self.servers
        # The queues hold request-id ints in kernel mode (the object path
        # stores Request instances in the same deques), hence Any.
        self._srv_queue: list[Any] = [s._queue for s in srv]
        self._srv_conc = [s.concurrency for s in srv]
        self._srv_base = [s.base_service_time_ms for s in srv]
        self._srv_rng = [s.rng for s in srv]
        self._srv_det = [s.deterministic for s in srv]
        self._srv_alpha = [s._service_time_ewma.alpha for s in srv]
        # Write-only server accounting lives in dense lists for the run and
        # is folded back in _sync_back().  Nothing reads these mid-run: the
        # snitch/oracle ``server_state_fn`` reads only pending_requests and
        # current_service_time_ms, which stay live on the object.
        self._s_reqr = [s.requests_received for s in srv]
        self._s_reqc = [s.requests_completed for s in srv]
        self._s_busy = [s.busy_time_ms for s in srv]
        self._s_cqs = [s.cumulative_queue_samples for s in srv]
        self._s_qs = [s.queue_samples for s in srv]
        self._s_maxq = [s.max_queue_length for s in srv]
        self._s_ewv: list[Any] = [s._service_time_ewma._value for s in srv]
        self._s_ewc = [s._service_time_ewma._count for s in srv]
        self.size_factor = 1.0 if cfg.record_size <= 0 else max(0.25, cfg.record_size / 1024.0)

        clients = sim.clients
        self.n_clients = len(clients)
        # Selectors and hedging policies are dispatched on their *exact*
        # run-time type (_detect_mode) and then accessed through per-mode
        # attributes the base classes don't declare; Any is the honest type.
        self._sels: list[Any] = [c.selector for c in clients]
        self._crngs = [c.rng for c in clients]
        self.rrp = float(cfg.read_repair_probability)
        self._policies: list[Any] = [c.hedging for c in clients]
        self._hedged = any(p is not None for p in self._policies)
        self.mode = self._detect_mode(self._sels[0]) if self._sels else _CUSTOM

        num_servers = cfg.num_servers
        if self.mode == _LOR:
            self._sel_rngs = [sel.rng for sel in self._sels]
            self._out: list[Any] = [sel.kernel_state(num_servers) for sel in self._sels]
            self._subm = [sel.requests_submitted for sel in self._sels]
            self._resp = [sel.responses_received for sel in self._sels]
        elif self.mode == _P2C:
            self._sel_rngs = [sel.rng for sel in self._sels]
            self.p2c_alpha = float(self._sels[0].alpha)
            self._out = []
            self._ew_val: list[Any] = []
            self._ew_init: list[Any] = []
            for sel in self._sels:
                out, values, seeded = sel.kernel_state(num_servers)
                self._out.append(out)
                self._ew_val.append(values)
                self._ew_init.append(seeded)
            self._ew_cnt = [[0] * num_servers for _ in self._sels]
            self._subm = [sel.requests_submitted for sel in self._sels]
            self._resp = [sel.responses_received for sel in self._sels]
        elif self.mode == _C3:
            states = [sel.kernel_state(num_servers) for sel in self._sels]
            c3_cfg = self._sels[0].config
            if any(s is None for s in states) or any(
                sel.config != c3_cfg for sel in self._sels
            ):
                # Subclassed internals or heterogeneous configs: run C3
                # through the fully polymorphic path instead.
                self.mode = _CUSTOM
            else:
                self._c3_scheds = [sel.scheduler for sel in self._sels]
                scorer_state = [s[0] for s in states]
                self._c3_rt_val = [x[0] for x in scorer_state]
                self._c3_rt_cnt = [x[1] for x in scorer_state]
                self._c3_qs_val = [x[2] for x in scorer_state]
                self._c3_qs_cnt = [x[3] for x in scorer_state]
                self._c3_st_val = [x[4] for x in scorer_state]
                self._c3_st_cnt = [x[5] for x in scorer_state]
                self._c3_out = [x[6] for x in scorer_state]
                self._c3_fb_cnt = [x[7] for x in scorer_state]
                self._c3_last_sent = [x[8] for x in scorer_state]
                self._c3_last_fb = [x[9] for x in scorer_state]
                self._c3_tiekey = [x[10] for x in scorer_state]
                self._c3_ctrl = [s[1] for s in states]
                # Config scalars are read exactly as the scorer reads them
                # (no float() coercion — arithmetic must match bitwise).
                self.c3_alpha = c3_cfg.ewma_alpha
                self.c3_w = c3_cfg.concurrency_weight
                self.c3_b = c3_cfg.score_exponent
                self.c3_floor = c3_cfg.service_time_floor_ms
                self.c3_rc = c3_cfg.rate_control_enabled
                n_c3 = self.n_clients
                self._c3_subm = [0] * n_c3
                self._c3_sent = [0] * n_c3
                self._c3_bp = [0] * n_c3
                self._c3_resp = [0] * n_c3
                self._c3_s_sends = [0] * n_c3
                self._c3_s_resps = [0] * n_c3
                self._c3_s_evals = [0] * n_c3

        # Arena: one slot per request, rid == index == per-simulation id.
        self._created: list[float] = []
        self._client: list[int] = []
        self._group: list[tuple] = []
        self._kind: list[int] = []
        self._parent: list[int] = []
        self._disp: list[float] = []
        self._sid: list[int] = []
        self._comp: list[float] = []

        # Per-client timers / hedging book-keeping.
        n = self.n_clients
        self._parked: list[list[int]] = [[] for _ in range(n)]
        self._parked_armed = [False] * n
        self._retry_armed = [False] * n
        self._hedge_ops: list[dict] = [{} for _ in range(n)]
        self._hedge_by_copy: list[dict] = [{} for _ in range(n)]
        self._rr_blk: list["np.ndarray | None"] = [None] * n
        self._rr_idx = [0] * n

        # Client counters (synced back to SimClient objects at end of run).
        self._requests_handled = [0] * n
        self._responses_handled = [0] * n
        self._rr_count = [0] * n
        self._parked_cnt = [0] * n
        self._hedges_fired = [0] * n
        self._hedges_won = [0] * n

        # Metrics accumulators.
        self._exact = sim.metrics.metrics_mode == "exact"
        self._lat_all: list[float] = []
        self._lat_read: list[float] = []
        self._lat_write: list[float] = []
        self._srv_times: list[list[float]] = [[] for _ in range(num_servers)]
        self.completed = 0
        self.issued = 0
        self.duplicates = 0
        self.backpressure = 0

        generator = sim.generator
        assert generator is not None
        self.gen = generator
        self.proc = generator.process
        self.wrng = generator.rng
        self.groups = generator.groups
        self.n_groups = len(generator.groups)
        self._client_probs = generator._client_probs
        self.read_fraction = generator.read_fraction
        #: rng="block" shares the generator's BlockDraws; None under "v1".
        self.blocks = generator.block_draws

        # Monotone FIFO lanes for ENQUEUE/RESPONSE entries.  Under a
        # constant-latency network every such entry is pushed at
        # now + const_delay with ``now`` nondecreasing, so per-lane push
        # order equals (time, seq) order and a deque replaces the heap's
        # O(log n) sifts with O(1) appends/poplefts.  Entries keep the heap
        # tuple shape so the dispatch handlers are shared; a mid-run network
        # change drains both lanes back into the heap (see _run_slice).
        self._fifo_enq: "deque[tuple]" = deque()
        self._fifo_resp: "deque[tuple]" = deque()
        self._fifo_on = type(sim.network) is ConstantLatency

    @staticmethod
    def _detect_mode(selector: ReplicaSelector) -> int:
        """Pick the fast path the selector's exact type allows.

        The inlined LOR/P2C paths require the *exact* class (a subclass may
        override any hook); the generic stock path requires the base
        ``submit``/``on_response``/backlog methods to be unoverridden.
        Anything else — C3, rate-limited round-robin, user strategies —
        takes the fully polymorphic path.
        """
        cls = type(selector)
        if cls is LeastOutstandingSelector:
            return _LOR
        if cls is PowerOfTwoSelector:
            return _P2C
        if cls is C3Selector:
            return _C3
        if (
            isinstance(selector, StatefulSelector)
            and cls.submit is StatefulSelector.submit
            and cls.on_response is StatefulSelector.on_response
            and cls.kernel_submit is ReplicaSelector.kernel_submit
            and cls.pending_backlog is ReplicaSelector.pending_backlog
            and cls.drain_backlog is ReplicaSelector.drain_backlog
        ):
            return _STOCK
        return _CUSTOM

    # ------------------------------------------------------------------- run
    def run(self) -> "SimulationResult":
        sim = self.sim
        cfg = sim.config
        loop = self.loop
        if sim.scenario is not None:
            sim.scenario.start(sim._scenario_ctx)
        elif sim.fluctuation is not None:
            sim.fluctuation.start()
        # The next workload arrival is scalar state rather than a heap entry:
        # arrival times are strictly increasing, so at most one is pending
        # and it never needs heap ordering among its own kind.  It still
        # consumes a heap sequence number at "push" time so (time, seq)
        # comparisons against real heap entries break ties exactly as the
        # object path's scheduled arrival events do.
        if self.proc.total_arrivals > 0:
            if self.blocks is None:
                gap = float(self.wrng.exponential(1.0 / self.proc.rate_per_ms))
            else:
                gap = self.blocks.next_gap() * (1.0 / self.proc.rate_per_ms)
            self._arr_t = loop._now + gap
            self._arr_seq = loop._seq
            loop._seq += 1
        else:
            self._arr_t = _NEVER
            self._arr_seq = 0

        slice_ms = max(10.0, cfg.fluctuation_interval_ms)
        while self.completed < cfg.num_requests and loop._now < cfg.max_sim_time_ms:
            self._run_slice(loop._now + slice_ms)

        duration = loop._now
        if sim.scenario is not None:
            sim.scenario.stop()
        self._sync_back()
        extra = {
            "config": cfg,
            "clients": self.n_clients,
            "servers": len(self.servers),
            "backlog_remaining": sum(sel.pending_backlog() for sel in self._sels),
            "parked_remaining": sum(len(parked) for parked in self._parked),
            "scenario": cfg.scenario,
        }
        return self.metrics.result(duration_ms=duration, strategy=cfg.strategy, extra=extra)

    def _push(self, time: float, code: int, a, b, c) -> None:
        loop = self.loop
        seq = loop._seq
        loop._seq = seq + 1
        heappush(self.heap, (time, seq, code, a, b, c))

    def _run_slice(self, until: float) -> None:
        """Process every heap entry with ``time <= until``.

        The four per-request handlers (RESPONSE, FINISH, ENQUEUE, ARRIVAL)
        are inlined here with their state hoisted into locals: at ~5 heap
        entries per completed request, attribute lookups inside the handlers
        are the dominant Python overhead once allocation is gone.  The rare
        paths — suspicious-mode submits, custom selectors, hedge/retry/park
        timers, restore-time queue drains — still go through the method
        handlers (``_submit``, ``_send``, ``start_service``, ...), which the
        inline blocks transcribe with loop-invariant reads hoisted.
        """
        loop = self.loop
        heap = self.heap
        pop = heappop
        push = heappush
        servers = self.servers
        created = self._created
        client_of = self._client
        group_of = self._group
        kind_of = self._kind
        parent_of = self._parent
        disp = self._disp
        sid_of = self._sid
        comp = self._comp
        created_app = created.append
        client_app = client_of.append
        group_app = group_of.append
        kind_app = kind_of.append
        parent_app = parent_of.append
        disp_app = disp.append
        sid_app = sid_of.append
        comp_app = comp.append
        srv_times = self._srv_times
        tracker = self.tracker
        binary = self._binary
        det = self.det
        mode = self.mode
        hedged = self._hedged
        sels = self._sels
        size_factor = self.size_factor
        sim = self.sim
        rrp = self.rrp
        exact = self._exact
        lat_all = self._lat_all
        lat_read = self._lat_read
        lat_write = self._lat_write
        responses_handled = self._responses_handled
        requests_handled = self._requests_handled
        q_all = self._srv_queue
        conc_all = self._srv_conc
        base_all = self._srv_base
        srng_all = self._srv_rng
        det_all = self._srv_det
        alpha_all = self._srv_alpha
        reqr = self._s_reqr
        reqc = self._s_reqc
        busy = self._s_busy
        cqs = self._s_cqs
        qs = self._s_qs
        maxq = self._s_maxq
        ewv = self._s_ewv
        ewc = self._s_ewc
        crngs = self._crngs
        rr_blk = self._rr_blk
        rr_idx = self._rr_idx
        if mode <= _P2C:
            out_all = self._out
            subm = self._subm
            resp = self._resp
            sel_rngs = self._sel_rngs
        if mode == _P2C:
            ew_all = self._ew_val
            ew_init_all = self._ew_init
            ew_cnt_all = self._ew_cnt
            p2c_alpha = self.p2c_alpha
        if mode == _C3:
            c3_rt_val = self._c3_rt_val
            c3_rt_cnt = self._c3_rt_cnt
            c3_qs_val = self._c3_qs_val
            c3_qs_cnt = self._c3_qs_cnt
            c3_st_val = self._c3_st_val
            c3_st_cnt = self._c3_st_cnt
            c3_out = self._c3_out
            c3_fb_cnt = self._c3_fb_cnt
            c3_last_sent = self._c3_last_sent
            c3_last_fb = self._c3_last_fb
            c3_tiekey = self._c3_tiekey
            c3_ctrl = self._c3_ctrl
            c3_scheds = self._c3_scheds
            c3_subm = self._c3_subm
            c3_sent = self._c3_sent
            c3_bp = self._c3_bp
            c3_resp = self._c3_resp
            c3_s_sends = self._c3_s_sends
            c3_s_resps = self._c3_s_resps
            c3_s_evals = self._c3_s_evals
            c3_alpha = self.c3_alpha
            c3_w = self.c3_w
            c3_b = self.c3_b
            c3_floor = self.c3_floor
            c3_rc = self.c3_rc
        proc = self.proc
        wrng = self.wrng
        w_integers = wrng.integers
        w_random = wrng.random
        w_exponential = wrng.exponential
        blocks = self.blocks
        if blocks is not None:
            blk_client = blocks.next_client
            blk_group = blocks.next_group
            blk_coin = blocks.next_coin
            blk_gap = blocks.next_gap
        groups = self.groups
        n_clients = self.n_clients
        n_groups = self.n_groups
        client_probs = self._client_probs
        read_fraction = self.read_fraction
        always_read = read_fraction >= 1.0
        rr_cnt = self._rr_count
        # Arrival-process state and the network model only change via
        # scenario events, so both are hoisted here and re-derived after
        # each generic Event callback rather than per event.  ``generated``
        # is written back around callbacks and at slice end.
        generated = proc.generated
        total_arrivals = proc.total_arrivals
        inv_rate = 1.0 / proc.rate_per_ms
        network = sim.network
        const_delay = network.delay_ms if type(network) is ConstantLatency else None
        fifo_e = self._fifo_enq
        fifo_r = self._fifo_resp
        fifo_on = self._fifo_on
        fe_app = fifo_e.append
        fr_app = fifo_r.append
        fe_pop = fifo_e.popleft
        fr_pop = fifo_r.popleft
        issued_delta = 0
        completed_delta = 0
        arr_t = self._arr_t
        arr_seq = self._arr_seq
        fired = 0
        while True:
            # Four event sources merge by (time, seq): the heap, the two
            # monotone FIFO lanes, and the scalar next-arrival.  seqs are
            # globally unique, so the comparisons below impose exactly the
            # order one shared heap would.
            if heap:
                entry = heap[0]
                t = entry[0]
                s = entry[1]
                src = 0
            else:
                entry = None
                t = _NEVER
                s = 0
                src = 0
            if fifo_e:
                cand = fifo_e[0]
                ct = cand[0]
                if ct < t or (ct == t and cand[1] < s):
                    entry = cand
                    t = ct
                    s = cand[1]
                    src = 2
            if fifo_r:
                cand = fifo_r[0]
                ct = cand[0]
                if ct < t or (ct == t and cand[1] < s):
                    entry = cand
                    t = ct
                    s = cand[1]
                    src = 3
            if arr_t < t or (arr_t == t and arr_seq < s):
                arrival = True
                t = arr_t
            else:
                arrival = False
            if t > until:
                break
            if arrival:
                # Workload arrivals live as scalar state (at most one is ever
                # pending, and arrival times are strictly increasing), so the
                # hottest event class never touches the heap.  The seq is
                # still consumed at the same stream position the object path
                # consumed it, so (t, seq) ties against heap entries resolve
                # identically.
                fired += 1
                generated += 1
                if blocks is None:
                    if client_probs is None:
                        cid = int(w_integers(n_clients))
                    else:
                        cid = int(wrng.choice(n_clients, p=client_probs))
                    group = groups[int(w_integers(n_groups))]
                    kind = _READ if always_read or w_random() < read_fraction else _WRITE
                else:
                    cid = blk_client()
                    group = groups[blk_group()]
                    kind = _READ if always_read or blk_coin() < read_fraction else _WRITE
                rid = len(created)
                created_app(t)
                client_app(cid)
                group_app(group)
                kind_app(kind)
                parent_app(-1)
                disp_app(-1.0)
                sid_app(-1)
                comp_app(-1.0)
                requests_handled[cid] += 1
                issued_delta += 1
                suspicious = tracker.count != 0 if binary else det.suspicious()
                if suspicious or mode == _CUSTOM:
                    self._submit(rid, cid, t)
                else:
                    # Inline submit + dispatch for the LOR/P2C/stock fast
                    # modes (no liveness filtering needed, so the
                    # dispatch-time re-check is also vacuous).
                    if mode == _STOCK:
                        out = None
                        sel = sels[cid]
                        sel.requests_submitted += 1
                        sid = sel.choose(group, t)
                        sel.record_send(sid, t)
                    elif mode == _C3:
                        # Inline Algorithm 1: scalar cubic scores over the
                        # scorer's live dense arrays (expression transcribed
                        # from cubic_score, bitwise-equal), rank by
                        # (score, outstanding, tiekey), then the rate-control
                        # acquire loop.  Read-repair duplicates below go
                        # through on_duplicate_send (out is None) — the
                        # arrays are shared, so method fallbacks stay
                        # coherent with this inline path.
                        out = None
                        sel = sels[cid]
                        c3_subm[cid] += 1
                        rt_val = c3_rt_val[cid]
                        qs_val = c3_qs_val[cid]
                        st_val = c3_st_val[cid]
                        st_cnt = c3_st_cnt[cid]
                        souts = c3_out[cid]
                        tiekey = c3_tiekey[cid]
                        c3_s_evals[cid] += len(group)
                        decorated = []
                        k = 0
                        for s in group:
                            stv = st_val[s]
                            if not st_cnt[s] or stv < c3_floor:
                                stv = c3_floor
                            q = 1.0 + souts[s] * c3_w + qs_val[s]
                            decorated.append(
                                (
                                    rt_val[s] - stv + (q**c3_b) / (1.0 / stv),
                                    souts[s],
                                    tiekey[s],
                                    k,
                                )
                            )
                            k += 1
                        if not c3_rc:
                            sid = group[min(decorated)[3]]
                        else:
                            decorated.sort()
                            sid = -1
                            ctrls = c3_ctrl[cid]
                            for d in decorated:
                                cand_sid = group[d[3]]
                                if ctrls[cand_sid].try_acquire(t):
                                    sid = cand_sid
                                    break
                            if sid < 0:
                                # Backpressure: every replica is over rate.
                                sched = c3_scheds[cid]
                                sched.backlog.enqueue(rid, group, t)
                                c3_bp[cid] += 1
                                self.backpressure += 1
                                retry_after = sched.rate_control.earliest_availability(
                                    group, t
                                )
                                self._schedule_retry(cid, retry_after, t)
                                if generated < total_arrivals:
                                    if blocks is None:
                                        gap = float(w_exponential(inv_rate))
                                    else:
                                        gap = blk_gap() * inv_rate
                                    arr_t = t + gap
                                    arr_seq = loop._seq
                                    loop._seq = arr_seq + 1
                                else:
                                    arr_t = _NEVER
                                continue
                        souts[sid] += 1
                        c3_last_sent[cid][sid] = t
                        c3_s_sends[cid] += 1
                        c3_sent[cid] += 1
                    else:
                        subm[cid] += 1
                        out = out_all[cid]
                        if mode == _LOR:
                            # One pass: track the current minimum and lazily
                            # build the tie list only when a tie exists, so
                            # the common no-tie case touches no list
                            # machinery.
                            sid = -1
                            lowest = 1 << 60
                            tied = None
                            for s in group:
                                v = out[s]
                                if v < lowest:
                                    lowest = v
                                    sid = s
                                    tied = None
                                elif v == lowest:
                                    if tied is None:
                                        tied = [sid, s]
                                    else:
                                        tied.append(s)
                            if tied is not None:
                                sid = tied[int(sel_rngs[cid].integers(len(tied)))]
                        else:
                            if len(group) == 1:
                                sid = group[0]
                            else:
                                idx = sel_rngs[cid].choice(len(group), size=2, replace=False)
                                a, b = group[int(idx[0])], group[int(idx[1])]
                                ew = ew_all[cid]
                                sid = a if out[a] + ew[a] <= out[b] + ew[b] else b
                        out[sid] += 1
                    disp[rid] = t
                    sid_of[rid] = sid
                    delay = const_delay
                    if delay is None:
                        delay = network.one_way_delay(cid, sid)
                    seq_v = loop._seq
                    loop._seq = seq_v + 1
                    if fifo_on:
                        fe_app((t + delay, seq_v, _ENQUEUE, rid, sid, 0.0))
                    else:
                        push(heap, (t + delay, seq_v, _ENQUEUE, rid, sid, 0.0))
                    if kind == _READ and rrp > 0.0:
                        if hedged:
                            coin = crngs[cid].random()
                        else:
                            block = rr_blk[cid]
                            i = rr_idx[cid]
                            if block is None or i >= _RR_BLOCK:
                                block = rr_blk[cid] = crngs[cid].random(_RR_BLOCK)
                                i = 0
                            rr_idx[cid] = i + 1
                            coin = block[i]
                        if coin < rrp:
                            # Inline fanout: the dispatch-time liveness
                            # recheck of _rr_fanout/_dispatch is vacuous on
                            # this not-suspicious path, the crashed-sibling
                            # skip is not (phi can be calm while a server is
                            # objectively down).
                            down = tracker.count
                            for s in group:
                                if s == sid or (down and not servers[s]._up):
                                    continue
                                dup = len(created)
                                created_app(t)
                                client_app(cid)
                                group_app(group)
                                kind_app(_READ_REPAIR)
                                parent_app(rid)
                                disp_app(t)
                                sid_app(s)
                                comp_app(-1.0)
                                self.duplicates += 1
                                if out is not None:
                                    out[s] += 1
                                else:
                                    sel.on_duplicate_send(s, t)
                                delay = const_delay
                                if delay is None:
                                    delay = network.one_way_delay(cid, s)
                                seq_v = loop._seq
                                loop._seq = seq_v + 1
                                if fifo_on:
                                    fe_app((t + delay, seq_v, _ENQUEUE, dup, s, 0.0))
                                else:
                                    push(heap, (t + delay, seq_v, _ENQUEUE, dup, s, 0.0))
                                rr_cnt[cid] += 1
                    if hedged:
                        self._maybe_hedge(rid, cid, t)
                if generated < total_arrivals:
                    if blocks is None:
                        gap = float(w_exponential(inv_rate))
                    else:
                        gap = blk_gap() * inv_rate
                    arr_t = t + gap
                    arr_seq = loop._seq
                    loop._seq = arr_seq + 1
                else:
                    arr_t = _NEVER
                continue
            if src == 0:
                pop(heap)
            elif src == 2:
                fe_pop()
            else:
                fr_pop()
            code = entry[2]
            if type(code) is not int:
                # A generic Event (scenario component, fluctuation process).
                event = code
                event._loop = None
                if event.cancelled:
                    loop._dead -= 1
                    continue
                loop._now = t
                fired += 1
                proc.generated = generated
                event.callback(*event.args, **event.kwargs)
                generated = proc.generated
                inv_rate = 1.0 / proc.rate_per_ms
                network = sim.network
                new_delay = network.delay_ms if type(network) is ConstantLatency else None
                if new_delay != const_delay:
                    # The one-way delay changed (network swap): future
                    # pushes would break the FIFO lanes' monotonicity, so
                    # drain both lanes into the heap (entries already have
                    # the heap tuple shape) and run heap-only from here on.
                    const_delay = new_delay
                    if fifo_on:
                        fifo_on = self._fifo_on = False
                        for cand in fifo_e:
                            push(heap, cand)
                        fifo_e.clear()
                        for cand in fifo_r:
                            push(heap, cand)
                        fifo_r.clear()
                continue
            # loop._now is deliberately NOT updated per typed event: nothing
            # on the typed path reads the loop clock (handlers take ``t``
            # explicitly), generic callbacks get it set above, and the
            # trailing max() below restores it at slice end.
            fired += 1
            if code == _RESPONSE:
                rid = entry[3]
                cid = client_of[rid]
                sid = sid_of[rid]
                responses_handled[cid] += 1
                if not binary:
                    det.heartbeat(sid, t)
                if comp[rid] < 0.0:
                    comp[rid] = t
                dispatched = disp[rid]
                response_time = t - dispatched if dispatched >= 0.0 else t - created[rid]
                released = None
                if mode == _LOR:
                    resp[cid] += 1
                    out = out_all[cid]
                    if out[sid] > 0:
                        out[sid] -= 1
                elif mode == _P2C:
                    resp[cid] += 1
                    out = out_all[cid]
                    if out[sid] > 0:
                        out[sid] -= 1
                    ew = ew_all[cid]
                    if ew_init_all[cid][sid]:
                        ew[sid] = p2c_alpha * float(entry[4]) + (1.0 - p2c_alpha) * ew[sid]
                    else:
                        ew[sid] = float(entry[4])
                        ew_init_all[cid][sid] = True
                    ew_cnt_all[cid][sid] += 1
                elif mode == _STOCK:
                    sel = sels[cid]
                    sel.responses_received += 1
                    sel.record_response(
                        sid, ServerFeedback(entry[4], entry[5], sid), response_time, t
                    )
                elif mode == _C3:
                    # Inline Algorithm 2: three EWMA folds into the scorer's
                    # live arrays (transcribed from _ewma_fold), then the
                    # CUBIC controller update and a guarded backlog drain.
                    c3_resp[cid] += 1
                    c3_s_resps[cid] += 1
                    souts = c3_out[cid]
                    if souts[sid] > 0:
                        souts[sid] -= 1
                    vals = c3_rt_val[cid]
                    cnts = c3_rt_cnt[cid]
                    if cnts[sid]:
                        vals[sid] = c3_alpha * response_time + (1.0 - c3_alpha) * vals[sid]
                    else:
                        vals[sid] = response_time
                    cnts[sid] += 1
                    vals = c3_qs_val[cid]
                    cnts = c3_qs_cnt[cid]
                    sample = float(entry[4])
                    if cnts[sid]:
                        vals[sid] = c3_alpha * sample + (1.0 - c3_alpha) * vals[sid]
                    else:
                        vals[sid] = sample
                    cnts[sid] += 1
                    vals = c3_st_val[cid]
                    cnts = c3_st_cnt[cid]
                    sample = entry[5]
                    if sample < c3_floor:
                        sample = c3_floor
                    if cnts[sid]:
                        vals[sid] = c3_alpha * sample + (1.0 - c3_alpha) * vals[sid]
                    else:
                        vals[sid] = sample
                    cnts[sid] += 1
                    c3_fb_cnt[cid][sid] += 1
                    c3_last_fb[cid][sid] = t
                    if c3_rc:
                        c3_ctrl[cid][sid].on_response(t)
                        sched = c3_scheds[cid]
                        if sched.backlog._queues:
                            rel = sched.drain_backlog(t)
                            if rel:
                                released = [(e.request, chosen) for e, chosen in rel]
                else:
                    released = sels[cid].on_response(
                        sid, ServerFeedback(entry[4], entry[5], sid), response_time, t
                    )
                if hedged:
                    self._hedge_complete(rid, cid, sid, response_time, t)
                else:
                    srv_times[sid].append(t)
                    if parent_of[rid] < 0:
                        latency = comp[rid] - created[rid]
                        if exact:
                            completed_delta += 1
                            lat_all.append(latency)
                            if kind_of[rid] == _WRITE:
                                lat_write.append(latency)
                            else:
                                lat_read.append(latency)
                        else:
                            self._record_latency(rid, latency)
                if released:
                    for pending_rid, pending_sid in released:
                        self._send(pending_rid, cid, pending_sid, t)
                if mode == _CUSTOM:
                    sel = sels[cid]
                    if sel.pending_backlog() > 0:
                        self._schedule_retry(cid, sel.next_retry_ms(t) or _MIN_RETRY_MS, t)
                elif mode == _C3 and c3_rc:
                    sched = c3_scheds[cid]
                    if sched.backlog._queues and sched.backlog.pending() > 0:
                        self._schedule_retry(
                            cid, sched.next_backlog_retry_ms(t) or _MIN_RETRY_MS, t
                        )
            elif code == _FINISH:
                rid = entry[3]
                sid = entry[4]
                service_time = entry[5]
                server = servers[sid]
                ins = server._in_service - 1
                server._in_service = ins
                reqc[sid] += 1
                busy[sid] += service_time
                alpha = alpha_all[sid]
                value = alpha * service_time + (1.0 - alpha) * ewv[sid]
                ewv[sid] = value
                ewc[sid] += 1
                queue = q_all[sid]
                qsize = len(queue) + ins
                stime = value if value > 1e-3 else 1e-3
                if queue and server._up and ins < conc_all[sid]:
                    concurrency = conc_all[sid]
                    server_rng = srng_all[sid]
                    deterministic = det_all[sid]
                    mean = (base_all[sid] * server._service_time_multiplier) * size_factor
                    block = server._svc_block
                    i = server._svc_i
                    while ins < concurrency and queue:
                        next_rid = queue.popleft()
                        ins += 1
                        if deterministic:
                            st = mean
                        else:
                            if block is None or i >= _SVC_BLOCK:
                                block = server._svc_block = server_rng.standard_exponential(
                                    _SVC_BLOCK
                                )
                                i = 0
                            st = float(mean * block[i])
                            i += 1
                        seq_v = loop._seq
                        loop._seq = seq_v + 1
                        push(heap, (t + st, seq_v, _FINISH, next_rid, sid, st))
                    server._in_service = ins
                    server._svc_i = i
                cid = client_of[rid]
                delay = const_delay
                if delay is None:
                    delay = network.one_way_delay(sid, cid)
                seq_v = loop._seq
                loop._seq = seq_v + 1
                if fifo_on:
                    fr_app((t + delay, seq_v, _RESPONSE, rid, qsize, stime))
                else:
                    push(heap, (t + delay, seq_v, _RESPONSE, rid, qsize, stime))
            elif code == _ENQUEUE:
                rid = entry[3]
                sid = entry[4]
                server = servers[sid]
                up = server._up
                if not up:
                    server.enqueued_while_down += 1
                reqr[sid] += 1
                queue = q_all[sid]
                ins = server._in_service
                pending = len(queue) + ins
                cqs[sid] += pending
                qs[sid] += 1
                pending += 1
                if pending > maxq[sid]:
                    maxq[sid] = pending
                # Queued requests imply no free slot (start_service always
                # drains), so a free slot here means the queue is empty and
                # this request starts service immediately.
                if up and ins < conc_all[sid]:
                    server._in_service = ins + 1
                    mean = (base_all[sid] * server._service_time_multiplier) * size_factor
                    if det_all[sid]:
                        st = mean
                    else:
                        block = server._svc_block
                        i = server._svc_i
                        if block is None or i >= _SVC_BLOCK:
                            block = server._svc_block = srng_all[sid].standard_exponential(
                                _SVC_BLOCK
                            )
                            i = 0
                        st = float(mean * block[i])
                        server._svc_i = i + 1
                    seq_v = loop._seq
                    loop._seq = seq_v + 1
                    push(heap, (t + st, seq_v, _FINISH, rid, sid, st))
                else:
                    queue.append(rid)
            elif code == _HEDGE:
                self._on_hedge(entry[1], entry[3], entry[4], t)
            elif code == _RETRY:
                self._on_retry(entry[3], t)
            else:
                self._on_parked(entry[3], t)
        if (
            arr_t > until
            and (not heap or heap[0][0] > until)
            and (not fifo_e or fifo_e[0][0] > until)
            and (not fifo_r or fifo_r[0][0] > until)
        ):
            loop._now = max(loop._now, until)
        loop._processed += fired
        self._arr_t = arr_t
        self._arr_seq = arr_seq
        proc.generated = generated
        self.issued += issued_delta
        self.completed += completed_delta

    # ------------------------------------------------------------- liveness
    def _suspicious(self) -> bool:
        if self._binary:
            return self.tracker.count != 0
        return self.det.suspicious()

    # ------------------------------------------------------------- requests
    def _new_request(self, cid: int, group: tuple, t: float, kind: int, parent: int) -> int:
        rid = len(self._created)
        self._created.append(t)
        self._client.append(cid)
        self._group.append(group)
        self._kind.append(kind)
        self._parent.append(parent)
        self._disp.append(-1.0)
        self._sid.append(-1)
        self._comp.append(-1.0)
        return rid

    def _submit(self, rid: int, cid: int, t: float) -> None:
        candidates = self._group[rid]
        if self._suspicious():
            if self._binary:
                servers = self.servers
                live = tuple(s for s in candidates if servers[s]._up)
            else:
                det = self.det
                live = tuple(s for s in candidates if det.is_alive(s, t))
            if not live:
                self._park(rid, cid, t)
                return
            candidates = live
        mode = self.mode
        if mode == _LOR:
            self._subm[cid] += 1
            out = self._out[cid]
            lowest = min(out[s] for s in candidates)
            tied = [s for s in candidates if out[s] == lowest]
            if len(tied) == 1:
                sid = tied[0]
            else:
                sid = tied[int(self._sel_rngs[cid].integers(len(tied)))]
            out[sid] += 1
            self._send(rid, cid, sid, t)
        elif mode == _P2C:
            self._subm[cid] += 1
            out = self._out[cid]
            if len(candidates) == 1:
                sid = candidates[0]
            else:
                idx = self._sel_rngs[cid].choice(len(candidates), size=2, replace=False)
                a, b = candidates[int(idx[0])], candidates[int(idx[1])]
                ew = self._ew_val[cid]
                sid = a if out[a] + ew[a] <= out[b] + ew[b] else b
            out[sid] += 1
            self._send(rid, cid, sid, t)
        elif mode == _STOCK:
            sel = self._sels[cid]
            sel.requests_submitted += 1
            sid = sel.choose(candidates, t)
            sel.record_send(sid, t)
            self._send(rid, cid, sid, t)
        else:
            decision = self._sels[cid].kernel_submit(rid, candidates, t)
            sid = decision.server_id
            if sid is not None:
                self._send(rid, cid, sid, t)
            else:
                self.backpressure += 1
                self._schedule_retry(cid, decision.retry_after_ms, t)

    def _send(self, rid: int, cid: int, sid: int, t: float) -> None:
        self._dispatch(rid, cid, sid, t)
        self._read_repair(rid, cid, t)
        if self._hedged:
            self._maybe_hedge(rid, cid, t)

    def _dispatch(self, rid: int, cid: int, sid: int, t: float) -> None:
        if self._suspicious():
            alive = self.servers[sid]._up if self._binary else self.det.is_alive(sid, t)
            if not alive:
                # A selector-internal placement (backlog drain) raced with a
                # crash: release the selector's accounting and park.
                self._sel_timeout(cid, sid, t)
                self._park(rid, cid, t)
                return
        self._disp[rid] = t
        self._sid[rid] = sid
        network = self.sim.network
        delay = (
            network.delay_ms
            if type(network) is ConstantLatency
            else network.one_way_delay(cid, sid)
        )
        loop = self.loop
        seq = loop._seq
        loop._seq = seq + 1
        entry = (t + delay, seq, _ENQUEUE, rid, sid, 0.0)
        if self._fifo_on:
            self._fifo_enq.append(entry)
        else:
            heappush(self.heap, entry)

    def _sel_timeout(self, cid: int, sid: int, t: float) -> None:
        if self.mode <= _P2C:
            out = self._out[cid]
            if out[sid] > 0:
                out[sid] -= 1
        else:
            self._sels[cid].on_timeout(sid, t)

    def _read_repair(self, rid: int, cid: int, t: float) -> None:
        if self._kind[rid] != _READ or self._parent[rid] >= 0:
            return
        rrp = self.rrp
        if rrp <= 0.0:
            return
        if self._hedged:
            # The client RNG interleaves coins with hedge-target draws, so
            # stay on the scalar stream.
            coin = self._crngs[cid].random()
        else:
            block = self._rr_blk[cid]
            i = self._rr_idx[cid]
            if block is None or i >= len(block):
                block = self._rr_blk[cid] = self._crngs[cid].random(_RR_BLOCK)
                i = 0
            self._rr_idx[cid] = i + 1
            coin = block[i]
        if coin >= rrp:
            return
        self._rr_fanout(rid, cid, t)

    def _rr_fanout(self, rid: int, cid: int, t: float) -> None:
        """Send read-repair duplicates to the primary's live siblings."""
        down = self.tracker.count
        primary_sid = self._sid[rid]
        group = self._group[rid]
        servers = self.servers
        fast = self.mode <= _P2C
        for sid in group:
            if sid == primary_sid:
                continue
            if down and not servers[sid]._up:
                continue
            duplicate = self._new_request(cid, group, t, _READ_REPAIR, rid)
            self.duplicates += 1
            if fast:
                self._out[cid][sid] += 1
            else:
                self._sels[cid].on_duplicate_send(sid, t)
            self._dispatch(duplicate, cid, sid, t)
            self._rr_count[cid] += 1

    # -------------------------------------------------------------- hedging
    def _maybe_hedge(self, rid: int, cid: int, t: float) -> None:
        policy = self._policies[cid]
        if policy is None:
            return
        if self._kind[rid] != _READ or self._parent[rid] >= 0:
            return
        sid = self._sid[rid]
        if sid < 0 or rid in self._hedge_ops[cid]:
            return
        threshold = policy.threshold_ms()
        if threshold is None:
            return
        loop = self.loop
        seq = loop._seq
        loop._seq = seq + 1
        heappush(self.heap, (t + threshold, seq, _HEDGE, cid, rid, 0.0))
        self._hedge_ops[cid][rid] = [False, 0, {sid}, seq]

    def _on_hedge(self, seq: int, cid: int, rid: int, t: float) -> None:
        op = self._hedge_ops[cid].get(rid)
        if op is None or op[_OP_DONE] or op[_OP_ARMED] != seq:
            return
        op[_OP_ARMED] = None
        policy = self._policies[cid]
        group = self._group[rid]
        used = op[_OP_USED]
        if self._binary:
            servers = self.servers
            candidates = tuple(s for s in group if s not in used and servers[s]._up)
        else:
            det = self.det
            candidates = tuple(s for s in group if s not in used and det.is_alive(s, t))
        if not candidates:
            # Every unused replica is currently suspect; keep the timer armed
            # while budget remains (see SimClient._fire_hedge).
            self._rearm_hedge(cid, rid, op, policy, t)
            return
        target = candidates[int(self._crngs[cid].integers(len(candidates)))]
        duplicate = self._new_request(cid, group, t, _SPECULATIVE, rid)
        used.add(target)
        op[_OP_FIRED] += 1
        self._hedge_by_copy[cid][duplicate] = rid
        self.duplicates += 1
        self._hedges_fired[cid] += 1
        if self.mode <= _P2C:
            self._out[cid][target] += 1
        else:
            self._sels[cid].on_duplicate_send(target, t)
        self._dispatch(duplicate, cid, target, t)
        self._rearm_hedge(cid, rid, op, policy, t)

    def _rearm_hedge(self, cid: int, rid: int, op: list, policy, t: float) -> None:
        if op[_OP_FIRED] < policy.max_extra:
            threshold = policy.threshold_ms()
            if threshold is not None:
                loop = self.loop
                seq = loop._seq
                loop._seq = seq + 1
                heappush(self.heap, (t + threshold, seq, _HEDGE, cid, rid, 0.0))
                op[_OP_ARMED] = seq

    def _hedge_complete(self, rid: int, cid: int, sid: int, response_time: float, t: float) -> None:
        # Server load is credited per response, at the response's own time.
        self._srv_times[sid].append(t)
        primary = self._hedge_by_copy[cid].pop(rid, None)
        comp = self._comp
        if primary is not None:
            op = self._hedge_ops[cid].get(primary)
            if op is None or op[_OP_DONE]:
                return
            op[_OP_DONE] = True
            self._hedges_won[cid] += 1
            if comp[primary] < 0.0:
                comp[primary] = t
            dispatched = self._disp[primary]
            if dispatched >= 0.0:
                self._policies[cid].record(t - dispatched)
            if self._parent[primary] < 0:
                self._record_latency(primary, comp[primary] - self._created[primary])
            return
        op = self._hedge_ops[cid].pop(rid, None)
        if op is not None and op[_OP_DONE]:
            return
        if self._kind[rid] == _READ and self._parent[rid] < 0:
            self._policies[cid].record(response_time)
        if self._parent[rid] < 0:
            self._record_latency(rid, comp[rid] - self._created[rid])

    # -------------------------------------------------------------- servers
    def start_service(self, server: KernelServer) -> None:
        """Start queued requests while slots are free (block-drawn times).

        Also the target of :meth:`KernelServer._try_start_service`, so
        scenario ``restore()`` calls drain through the same stream.
        """
        queue = server._queue
        if not queue or not server._up or server._in_service >= server.concurrency:
            return
        loop = self.loop
        t = loop._now
        heap = self.heap
        sid = server.server_id
        rng = server.rng
        size_factor = self.size_factor
        concurrency = server.concurrency
        block = server._svc_block
        i = server._svc_i
        while server._up and server._in_service < concurrency and queue:
            rid = queue.popleft()
            server._in_service += 1
            mean = (server.base_service_time_ms * server._service_time_multiplier) * size_factor
            if server.deterministic:
                service_time = mean
            else:
                if block is None or i >= len(block):
                    block = server._svc_block = rng.standard_exponential(_SVC_BLOCK)
                    i = 0
                service_time = float(mean * block[i])
                i += 1
            seq = loop._seq
            loop._seq = seq + 1
            heappush(heap, (t + service_time, seq, _FINISH, rid, sid, service_time))
        server._svc_i = i

    def _record_latency(self, rid: int, latency: float) -> None:
        self.completed += 1
        if self._exact:
            self._lat_all.append(latency)
            if self._kind[rid] == _WRITE:
                self._lat_write.append(latency)
            else:
                self._lat_read.append(latency)
        else:
            metrics = self.metrics
            metrics._histogram.record(latency)
            if self._kind[rid] == _WRITE:
                metrics._write_histogram.record(latency)
            else:
                metrics._read_histogram.record(latency)

    # ------------------------------------------------------ parking / retries
    def _park(self, rid: int, cid: int, t: float) -> None:
        self.backpressure += 1
        self._parked_cnt[cid] += 1
        self._parked[cid].append(rid)
        if not self._parked_armed[cid]:
            self._parked_armed[cid] = True
            self._push(t + _PARKED_RETRY_MS, _PARKED, cid, 0, 0.0)

    def _on_parked(self, cid: int, t: float) -> None:
        self._parked_armed[cid] = False
        parked = self._parked[cid]
        self._parked[cid] = []
        for rid in parked:
            self._submit(rid, cid, t)

    def _schedule_retry(self, cid: int, delay_ms: float, t: float) -> None:
        if self._retry_armed[cid]:
            return
        self._retry_armed[cid] = True
        delay = float(delay_ms)
        if delay < _MIN_RETRY_MS:
            delay = _MIN_RETRY_MS
        self._push(t + delay, _RETRY, cid, 0, 0.0)

    def _on_retry(self, cid: int, t: float) -> None:
        self._retry_armed[cid] = False
        sel = self._sels[cid]
        for rid, sid in sel.drain_backlog(t):
            self._send(rid, cid, sid, t)
        if sel.pending_backlog() > 0:
            retry = sel.next_retry_ms(t)
            self._schedule_retry(cid, retry if retry is not None else 1.0, t)

    # ------------------------------------------------------------- write-back
    def _sync_back(self) -> None:
        """Fold kernel-local state back into the object graph.

        After this, ``sim.metrics``, every ``SimClient`` counter, and the
        LOR/P2C selector state match what the object path would have left
        behind, so ``stats()``/``result()`` work unchanged.
        """
        metrics = self.metrics
        if self._exact:
            metrics._latencies = self._lat_all
            metrics._read_latencies = self._lat_read
            metrics._write_latencies = self._lat_write
        metrics.completed_requests = self.completed
        metrics.issued_requests = self.issued
        metrics.duplicate_requests = self.duplicates
        metrics.backpressure_events = self.backpressure
        for sid, server in enumerate(self.servers):
            server.requests_received = self._s_reqr[sid]
            server.requests_completed = self._s_reqc[sid]
            server.busy_time_ms = self._s_busy[sid]
            server.cumulative_queue_samples = self._s_cqs[sid]
            server.queue_samples = self._s_qs[sid]
            server.max_queue_length = self._s_maxq[sid]
            ewma = server._service_time_ewma
            ewma._value = self._s_ewv[sid]
            ewma._count = self._s_ewc[sid]
        for sid, times in enumerate(self._srv_times):
            if times:
                counter = WindowedCounter(metrics.window_ms)
                counter.record_batch(np.asarray(times, dtype=float))
                metrics._per_server_windows[sid] = counter
                metrics._per_server_completed[sid] += len(times)

        self.gen.requests_generated = self.proc.generated
        for cid, client in enumerate(self.sim.clients):
            client.requests_handled = self._requests_handled[cid]
            client.responses_handled = self._responses_handled[cid]
            client.read_repairs_issued = self._rr_count[cid]
            client.requests_parked = self._parked_cnt[cid]
            client.hedges_fired = self._hedges_fired[cid]
            client.hedges_won = self._hedges_won[cid]
        if self.mode == _LOR:
            for cid, sel in enumerate(self._sels):
                sel.kernel_restore(self._out[cid], self._subm[cid], self._resp[cid])
        elif self.mode == _P2C:
            for cid, sel in enumerate(self._sels):
                sel.kernel_restore(
                    self._out[cid],
                    self._ew_val[cid],
                    self._ew_init[cid],
                    self._ew_cnt[cid],
                    self._subm[cid],
                    self._resp[cid],
                )
        elif self.mode == _C3:
            for cid, sel in enumerate(self._sels):
                sel.kernel_restore(
                    self._c3_subm[cid],
                    self._c3_sent[cid],
                    self._c3_bp[cid],
                    self._c3_resp[cid],
                    self._c3_s_sends[cid],
                    self._c3_s_resps[cid],
                    self._c3_s_evals[cid],
                )
