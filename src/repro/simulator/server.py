"""Simulated replica servers.

Each server (mirroring §6 of the paper) maintains a FIFO request queue and
services up to ``concurrency`` requests in parallel (4 by default).  Service
times are drawn from an exponential distribution whose mean is the server's
*current* service time — which a fluctuation process may change over time.
On every response the server piggy-backs :class:`~repro.core.feedback.ServerFeedback`
containing its queue size (recorded just before the response is dispatched)
and its current smoothed service time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

import numpy as np

from ..core.ewma import EWMA
from ..core.feedback import ServerFeedback
from .engine import EventLoop
from .request import Request

__all__ = ["DownServerTracker", "SimServer"]


class DownServerTracker:
    """Shared count of currently-crashed servers.

    One instance is shared by every server and client of a simulation so the
    client request path can skip all liveness filtering with a single integer
    check when nothing is down (the overwhelmingly common case).
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class SimServer:
    """A FIFO server with bounded service concurrency and feedback.

    Parameters
    ----------
    loop:
        The event loop driving the simulation.
    server_id:
        Stable identifier of this server.
    base_service_time_ms:
        Mean service time when the server is in its nominal state.
    concurrency:
        Number of requests serviced in parallel (paper: 4).
    rng:
        Random generator for service-time draws.
    deterministic:
        When True, service times equal the mean exactly (useful for unit
        tests that need exact arithmetic).
    on_complete:
        Callback ``(request, feedback, service_time)`` invoked when a request
        finishes service (before any network delay back to the client — the
        simulation wires that part).
    """

    def __init__(
        self,
        loop: EventLoop,
        server_id: Hashable,
        base_service_time_ms: float = 4.0,
        concurrency: int = 4,
        rng: np.random.Generator | None = None,
        deterministic: bool = False,
        on_complete: Callable[[Request, ServerFeedback, float], None] | None = None,
        feedback_alpha: float = 0.9,
        down_tracker: DownServerTracker | None = None,
    ) -> None:
        if base_service_time_ms <= 0:
            raise ValueError("base_service_time_ms must be positive")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.loop = loop
        self.server_id = server_id
        self.base_service_time_ms = float(base_service_time_ms)
        self.concurrency = int(concurrency)
        self.rng = rng or np.random.default_rng()
        self.deterministic = deterministic
        self.on_complete = on_complete

        self._service_time_multiplier = 1.0
        self._speed_factors: dict[object, float] = {}
        self._queue: deque[Request] = deque()
        self._in_service = 0
        self._service_time_ewma = EWMA(feedback_alpha, initial=base_service_time_ms)
        self._up = True
        self.down_tracker = down_tracker

        # Counters / instrumentation.
        self.requests_received = 0
        self.requests_completed = 0
        self.busy_time_ms = 0.0
        self.max_queue_length = 0
        self.cumulative_queue_samples = 0.0
        self.queue_samples = 0
        self.crashes = 0
        self.enqueued_while_down = 0

    # ------------------------------------------------------------- properties
    @property
    def current_service_time_ms(self) -> float:
        """Mean service time in the server's current state."""
        return self.base_service_time_ms * self._service_time_multiplier

    @property
    def current_service_rate(self) -> float:
        """Requests per ms per service slot in the current state."""
        return 1.0 / self.current_service_time_ms

    @property
    def queue_length(self) -> int:
        """Requests waiting for a service slot (excludes in-service)."""
        return len(self._queue)

    @property
    def pending_requests(self) -> int:
        """Waiting plus in-service requests — the queue size C3 feeds back."""
        return len(self._queue) + self._in_service

    @property
    def in_service(self) -> int:
        """Requests currently occupying a service slot."""
        return self._in_service

    @property
    def smoothed_service_time(self) -> float:
        """The server-side EWMA of observed service times (ms)."""
        return self._service_time_ewma.value

    @property
    def is_up(self) -> bool:
        """False while the server is crashed (scenario fault injection)."""
        return self._up

    # --------------------------------------------------------------- controls
    def crash(self) -> None:
        """Take the server down (idempotent).

        A crashed server starts no new service; clients route new requests
        around it.  Requests already being serviced run to completion (their
        finish events are in flight), and requests already on the wire are
        queued and resume when :meth:`restore` brings the server back — the
        simulator has no client-side timeout machinery, so dropping them
        would strand the run.
        """
        if not self._up:
            return
        self._up = False
        self.crashes += 1
        if self.down_tracker is not None:
            self.down_tracker.count += 1

    def restore(self) -> None:
        """Bring a crashed server back and drain whatever queued while down."""
        if self._up:
            return
        self._up = True
        if self.down_tracker is not None:
            self.down_tracker.count -= 1
        self._try_start_service()

    def set_service_time_multiplier(self, multiplier: float, source: object = None) -> None:
        """Change the server's speed (used by fluctuation / GC / compaction).

        A multiplier above 1 slows the server down; below 1 speeds it up.
        Only affects requests whose service starts after the change.

        ``source`` keys the perturbation: independent sources (a GC-pause
        process and a permanent slow-node process, say) each own one factor
        and the effective multiplier is their product, so composed scenario
        components cannot clobber each other's perturbations.  A source
        setting ``1.0`` withdraws its factor.  ``None`` is the shared
        default source (the historical single-writer behavior).
        """
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if multiplier == 1.0:
            self._speed_factors.pop(source, None)
        else:
            self._speed_factors[source] = float(multiplier)
        product = 1.0
        for factor in self._speed_factors.values():
            product *= factor
        self._service_time_multiplier = product

    def set_service_rate_multiplier(self, multiplier: float, source: object = None) -> None:
        """Change speed expressed as a rate multiplier (rate × multiplier)."""
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        self.set_service_time_multiplier(1.0 / float(multiplier), source)

    # ------------------------------------------------------------ request path
    def enqueue(self, request: Request) -> None:
        """Accept a request arriving at the server at the current sim time."""
        if not self._up:
            # Only reachable by requests that were already on the wire when
            # the crash hit; they wait in queue until restore().
            self.enqueued_while_down += 1
        self.requests_received += 1
        self.cumulative_queue_samples += self.pending_requests
        self.queue_samples += 1
        self._queue.append(request)
        self.max_queue_length = max(self.max_queue_length, self.pending_requests)
        self._try_start_service()

    def _try_start_service(self) -> None:
        while self._up and self._in_service < self.concurrency and self._queue:
            request = self._queue.popleft()
            self._in_service += 1
            request.started_service_at = self.loop.now
            service_time = self._draw_service_time(request)
            request.service_time = service_time
            self.loop.schedule(service_time, self._finish_service, request, service_time)

    def _draw_service_time(self, request: Request) -> float:
        mean = self.current_service_time_ms * self._size_factor(request)
        if self.deterministic:
            return mean
        return float(self.rng.exponential(mean))

    def _size_factor(self, request: Request) -> float:
        """Scale service time with record size (1 KB is the baseline)."""
        if request.record_size <= 0:
            return 1.0
        return max(0.25, request.record_size / 1024.0)

    def feedback_snapshot(self) -> ServerFeedback:
        """The queue/service-time feedback piggy-backed on a response.

        Recorded after the completed request has released its service slot
        and *before* the next queued request is started (per §3.1): the
        queue size a departing response reports includes neither the request
        it rides on nor any slot-refill that its departure enables.  The
        batched kernel snapshots the same two values at the same point in
        its completion handler.
        """
        return ServerFeedback(
            queue_size=self.pending_requests,
            service_time=max(self.smoothed_service_time, 1e-3),
            server_id=self.server_id,
        )

    def _finish_service(self, request: Request, service_time: float) -> None:
        self._in_service -= 1
        self.requests_completed += 1
        self.busy_time_ms += service_time
        self._service_time_ewma.update(service_time)
        feedback = self.feedback_snapshot()
        self._try_start_service()
        if self.on_complete is not None:
            self.on_complete(request, feedback, service_time)

    # ------------------------------------------------------------ observation
    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of capacity used over ``elapsed_ms`` of simulated time."""
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_time_ms / (elapsed_ms * self.concurrency)

    def stats(self) -> dict:
        """Summary statistics for reporting."""
        return {
            "server_id": self.server_id,
            "received": self.requests_received,
            "completed": self.requests_completed,
            "queue_length": self.queue_length,
            "pending": self.pending_requests,
            "max_queue_length": self.max_queue_length,
            "mean_queue_on_arrival": (
                self.cumulative_queue_samples / self.queue_samples if self.queue_samples else 0.0
            ),
            "busy_time_ms": self.busy_time_ms,
            "current_service_time_ms": self.current_service_time_ms,
            "up": self._up,
            "crashes": self.crashes,
        }
