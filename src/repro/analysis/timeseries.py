"""Time-series helpers: windowed aggregation and moving medians.

The paper smooths latency time-series with a 50-sample moving median
(Figure 11) because a moving median reveals the underlying trend of a
high-variance series better than a moving average.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["moving_median", "moving_average", "window_counts", "downsample"]


def moving_median(samples: Sequence[float] | np.ndarray, window: int = 50) -> np.ndarray:
    """Centered-start moving median with the given window length.

    The first ``window - 1`` outputs use the samples seen so far (expanding
    window), after which a fixed trailing window is used — matching how a
    streaming monitor would compute it.
    """
    arr = np.asarray(samples, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    if arr.size == 0:
        return arr.copy()
    out = np.empty_like(arr)
    for i in range(arr.size):
        start = max(0, i - window + 1)
        out[i] = np.median(arr[start : i + 1])
    return out


def moving_average(samples: Sequence[float] | np.ndarray, window: int = 50) -> np.ndarray:
    """Trailing moving average with an expanding warm-up, same shape as input."""
    arr = np.asarray(samples, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    if arr.size == 0:
        return arr.copy()
    out = np.empty_like(arr)
    cumsum = np.cumsum(arr)
    for i in range(arr.size):
        start = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[start - 1] if start > 0 else 0.0)
        out[i] = total / (i - start + 1)
    return out


def window_counts(
    timestamps: Iterable[float] | np.ndarray,
    window_ms: float = 100.0,
    horizon_ms: float | None = None,
) -> np.ndarray:
    """Histogram event timestamps into fixed windows (events per window)."""
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    arr = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=float)
    if arr.size == 0:
        if horizon_ms is None:
            return np.zeros(0, dtype=int)
        return np.zeros(int(np.ceil(horizon_ms / window_ms)), dtype=int)
    end = arr.max() if horizon_ms is None else max(arr.max(), horizon_ms)
    n_windows = int(np.floor(end / window_ms)) + 1
    idx = np.minimum((arr // window_ms).astype(int), n_windows - 1)
    counts = np.bincount(idx, minlength=n_windows)
    return counts


def downsample(samples: Sequence[float] | np.ndarray, max_points: int = 1000) -> np.ndarray:
    """Uniformly subsample a long series down to at most ``max_points``."""
    arr = np.asarray(samples, dtype=float)
    if max_points < 1:
        raise ValueError("max_points must be >= 1")
    if arr.size <= max_points:
        return arr.copy()
    idx = np.linspace(0, arr.size - 1, max_points).astype(int)
    return arr[idx]
