"""One-command sweep report: sweep + search results + perf trajectory.

:func:`render_report` renders any combination of saved sweep results
(:meth:`~repro.runner.SweepResult.save` JSON), successive-halving search
results (:meth:`~repro.runner.SearchResult.save` JSON), live-trial
payloads (``c3-repro live`` artifact directories), and
``benchmarks/BENCH_*.json`` pytest-benchmark snapshots into a single
markdown document; :func:`markdown_to_html` converts that markdown (the
subset this module emits: headings, pipe tables, bullet lists, paragraphs)
into a dependency-free standalone HTML page.  The ``c3-repro report`` CLI
command and the CI ``sweep-report`` artifact job are thin wrappers around
these two calls.

Everything rendered here is derived from the input files alone — no
timestamps, hostnames, or environment state — so re-rendering the same
inputs is byte-identical, and a report diff is a *results* diff.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - runner imports simulator imports this package
    from ..runner.results import SweepResult
    from ..runner.search import SearchResult

__all__ = [
    "bench_means",
    "markdown_to_html",
    "render_bench_section",
    "render_live_section",
    "render_report",
    "render_search_section",
    "render_sweep_section",
]

#: Aggregate columns shown per grid point, in order: (metric key, header).
_SWEEP_COLUMNS = (
    ("mean", "mean (ms)"),
    ("median", "median (ms)"),
    ("p99", "p99 (ms)"),
    ("p999", "p99.9 (ms)"),
    ("throughput_rps", "throughput (req/s)"),
)


def _fmt(value: object, precision: int = 2) -> str:
    """One cell: floats fixed-precision, everything else ``str``."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A GitHub-flavored markdown pipe table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def bench_means(path: str | Path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a pytest-benchmark JSON."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        means[str(name)] = float(bench["stats"]["mean"])
    return means


# ------------------------------------------------------------------ sections
def render_sweep_section(label: str, sweep: SweepResult) -> str:
    """The per-grid-point aggregate table for one saved sweep."""
    lines = [f"## Sweep: {label}", ""]
    total = sweep.total_trials if sweep.total_trials is not None else len(sweep.trials)
    status = "complete" if sweep.complete else f"INCOMPLETE ({len(sweep.trials)}/{total} trials)"
    lines.append(
        f"Spec `{sweep.spec_key[:12]}` — {total} trials, {sweep.executed} executed, "
        f"{sweep.cached} from cache, wall {sweep.wall_time_s:.2f}s — {status}."
    )
    lines.append("")
    points = sweep.aggregates()
    if not points:
        lines.append("No completed trials.")
        return "\n".join(lines)
    param_keys: list[str] = []
    for point in points:
        for key in point.params:
            if key not in param_keys:
                param_keys.append(key)
    streaming = all(point.pooled is not None for point in points)
    headers = (
        param_keys
        + ["n"]
        + [header for _, header in _SWEEP_COLUMNS]
        + (["pooled p99.9 (ms)"] if streaming else [])
    )
    rows = []
    for point in points:
        row: list[object] = [
            point.params.get(key) if point.params.get(key) is not None else "-"
            for key in param_keys
        ]
        row.append(point.n)
        row.extend(str(point.metrics[metric]) for metric, _ in _SWEEP_COLUMNS)
        if streaming:
            pooled = point.pooled or {}
            row.append(f"{pooled.get('p99.9', 0.0):.2f}")
        rows.append(row)
    lines.append(_md_table(headers, rows))
    return "\n".join(lines)


def render_search_section(search: SearchResult) -> str:
    """The rung trajectory and winner for one successive-halving search."""
    direction = "minimizing" if search.minimize else "maximizing"
    lines = [
        f"## Search: {direction} `{search.metric}` over `{search.axis}`",
        "",
        f"**Winner: `{search.best}`** — {search.metric} = {search.best_score:.3f}, "
        f"digest `{search.best_digest[:12]}`.",
        "",
        f"Executed {search.executed} trials vs {search.dense_trials} dense "
        f"({search.executed_fraction:.0%} of the grid; {search.cached} rung trials "
        f"served from cache), eta={search.eta}.",
        "",
    ]
    rows = []
    for rung in search.rungs:
        best = min(rung.scores.items(), key=lambda kv: kv[1] if search.minimize else -kv[1])
        rows.append(
            [
                rung.rung,
                len(rung.candidates),
                len(rung.seeds),
                rung.executed,
                rung.cached,
                f"`{best[0]}` ({best[1]:.3f})",
            ]
        )
    lines.append(
        _md_table(["rung", "candidates", "seeds", "executed", "cached", "rung best (score)"], rows),
    )
    if search.full_scores:
        lines.append("")
        lines.append("Candidates ranked at full replication:")
        lines.append("")
        ordered = sorted(
            search.full_scores.items(),
            key=lambda kv: kv[1] if search.minimize else -kv[1],
        )
        lines.append(
            _md_table(
                ["candidate", search.metric],
                [[f"`{candidate}`", f"{score:.3f}"] for candidate, score in ordered],
            )
        )
    return "\n".join(lines)


def render_live_section(trials: Sequence[tuple[str, Mapping]]) -> str:
    """One table over live-trial payloads (``live/payload.json`` dicts).

    Renders config + results only — the payload's provenance block
    (timestamps, hostname) is deliberately ignored, preserving this
    module's re-render-is-byte-identical contract.
    """
    lines = ["## Live trials", ""]
    if not trials:
        lines.append("No live trials given.")
        return "\n".join(lines)
    lines.append(
        "Localhost asyncio cluster trials (`c3-repro live`); latencies are "
        "warmup/cooldown-trimmed streaming-histogram statistics."
    )
    lines.append("")
    headers = [
        "trial",
        "strategy",
        "scenario",
        "servers",
        "n",
        "mean (ms)",
        "median (ms)",
        "p99 (ms)",
        "p99.9 (ms)",
        "throughput (req/s)",
        "timeouts",
    ]
    rows = []
    for label, payload in trials:
        config = payload.get("config", {})
        results = payload.get("results", {})
        latency = results.get("latency_ms", {})
        rows.append(
            [
                label,
                f"`{config.get('strategy', '-')}`",
                f"`{config.get('scenario', '-')}`",
                config.get("num_servers", "-"),
                results.get("trimmed_count", "-"),
                latency.get("mean", "-"),
                latency.get("median", "-"),
                latency.get("p99", "-"),
                latency.get("p999", "-"),
                results.get("throughput_rps", "-"),
                results.get("timeouts", "-"),
            ]
        )
    lines.append(_md_table(headers, rows))
    return "\n".join(lines)


def render_bench_section(paths: Sequence[str | Path]) -> str:
    """The perf trajectory across benchmark snapshot files.

    Columns appear in the given order (pass baselines first); the final
    column is the last/first mean ratio, the per-benchmark trajectory in
    one number (< 1.0 = faster than the first snapshot).
    """
    labeled: list[tuple[str, Mapping[str, float]]] = [
        (Path(path).stem, bench_means(path)) for path in paths
    ]
    lines = ["## Performance trajectory", ""]
    if not labeled:
        lines.append("No benchmark snapshots given.")
        return "\n".join(lines)
    lines.append(
        "Mean wall-clock per benchmark across snapshots ("
        + ", ".join(f"`{label}`" for label, _ in labeled)
        + "); ratio is last/first where both define the benchmark."
    )
    lines.append("")
    names: list[str] = []
    for _, means in labeled:
        for name in means:
            if name not in names:
                names.append(name)
    rows = []
    for name in names:
        row: list[object] = [f"`{name.rsplit('::', 1)[-1]}`"]
        for _, means in labeled:
            row.append(f"{means[name]:.4f}" if name in means else "-")
        first = labeled[0][1].get(name)
        last = labeled[-1][1].get(name)
        row.append(f"{last / first:.2f}x" if first and last else "-")
        rows.append(row)
    headers = ["benchmark"] + [f"{label} (s)" for label, _ in labeled] + ["ratio"]
    lines.append(_md_table(headers, rows))
    return "\n".join(lines)


def render_report(
    sweeps: Sequence[tuple[str, SweepResult]] = (),
    searches: Sequence[SearchResult] = (),
    bench_paths: Sequence[str | Path] = (),
    live_trials: Sequence[tuple[str, Mapping]] = (),
    title: str = "C3 reproduction — sweep report",
) -> str:
    """The full markdown report: sweeps, searches, live trials, perf trajectory."""
    sections = [f"# {title}"]
    summary = []
    if sweeps:
        summary.append(f"{len(sweeps)} sweep{'s' if len(sweeps) != 1 else ''}")
    if searches:
        summary.append(f"{len(searches)} search{'es' if len(searches) != 1 else ''}")
    if live_trials:
        summary.append(f"{len(live_trials)} live trial{'s' if len(live_trials) != 1 else ''}")
    if bench_paths:
        summary.append(f"{len(bench_paths)} benchmark snapshot{'s' if len(bench_paths) != 1 else ''}")
    sections.append("Inputs: " + (", ".join(summary) if summary else "none") + ".")
    for label, sweep in sweeps:
        sections.append(render_sweep_section(label, sweep))
    for search in searches:
        sections.append(render_search_section(search))
    if live_trials:
        sections.append(render_live_section(live_trials))
    if bench_paths:
        sections.append(render_bench_section(bench_paths))
    return "\n\n".join(sections) + "\n"


# ---------------------------------------------------------------------- html
_HTML_STYLE = """\
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
table { border-collapse: collapse; margin: 1rem 0; font-size: 0.9rem; }
th, td { border: 1px solid #d0d0d0; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
tr:nth-child(even) td { background: #fafafa; }
code { background: #f2f2f2; padding: 0.1rem 0.25rem; border-radius: 3px;
       font-size: 0.85em; }
h1, h2 { border-bottom: 1px solid #e0e0e0; padding-bottom: 0.3rem; }
"""


def _inline_html(text: str) -> str:
    """Escape HTML, then apply the two inline marks we emit: code and bold."""
    out = []
    escaped = html.escape(text, quote=False)
    for i, chunk in enumerate(escaped.split("`")):
        out.append(chunk if i % 2 == 0 else f"<code>{chunk}</code>")
    joined = "".join(out)
    pieces = joined.split("**")
    if len(pieces) % 2 == 1:
        joined = "".join(
            piece if i % 2 == 0 else f"<strong>{piece}</strong>" for i, piece in enumerate(pieces)
        )
    return joined


def _table_row(line: str) -> list[str]:
    return [cell.strip() for cell in line.strip().strip("|").split("|")]


def markdown_to_html(markdown: str, title: str = "sweep report") -> str:
    """Convert this module's markdown subset to a standalone HTML page.

    Supports exactly what :func:`render_report` emits — ``#``/``##``
    headings, pipe tables, ``-`` bullet lists, paragraphs, inline
    ``code``/``**bold**`` — which keeps the renderer dependency-free.
    """
    body: list[str] = []
    lines = markdown.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        stripped = line.strip()
        if not stripped:
            i += 1
            continue
        if stripped.startswith("#"):
            level = len(stripped) - len(stripped.lstrip("#"))
            level = min(level, 6)
            body.append(f"<h{level}>{_inline_html(stripped[level:].strip())}</h{level}>")
            i += 1
            continue
        if stripped.startswith("|"):
            table = []
            while i < len(lines) and lines[i].strip().startswith("|"):
                table.append(lines[i])
                i += 1
            headers = _table_row(table[0])
            body.append("<table>")
            body.append(
                "<tr>" + "".join(f"<th>{_inline_html(h)}</th>" for h in headers) + "</tr>",
            )
            for row_line in table[2:]:  # skip the |---| separator
                cells = _table_row(row_line)
                body.append(
                    "<tr>" + "".join(f"<td>{_inline_html(c)}</td>" for c in cells) + "</tr>",
                )
            body.append("</table>")
            continue
        if stripped.startswith("- "):
            body.append("<ul>")
            while i < len(lines) and lines[i].strip().startswith("- "):
                body.append(f"<li>{_inline_html(lines[i].strip()[2:])}</li>")
                i += 1
            body.append("</ul>")
            continue
        paragraph = [stripped]
        i += 1
        while i < len(lines):
            nxt = lines[i].strip()
            if not nxt or nxt.startswith(("#", "|", "- ")):
                break
            paragraph.append(nxt)
            i += 1
        body.append(f"<p>{_inline_html(' '.join(paragraph))}</p>")
    return (
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{html.escape(title)}</title>\n<style>\n{_HTML_STYLE}</style>\n"
        "</head>\n<body>\n" + "\n".join(body) + "\n</body>\n</html>\n"
    )
