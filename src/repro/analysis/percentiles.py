"""Percentile and summary statistics used across experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["EMPTY_SUMMARY", "LatencySummary", "summarize", "percentile", "tail_to_median_ratio"]

_DEFAULT_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def percentile(samples: Sequence[float] | np.ndarray, q: float) -> float:
    """The ``q``-th percentile of ``samples`` (0 for an empty sample set)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """The latency metrics the paper reports: mean, median, p95, p99, p99.9."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    p999: float
    minimum: float
    maximum: float
    std: float

    @property
    def tail_span(self) -> float:
        """p99.9 − median, the "difference" metric quoted in §5."""
        return self.p999 - self.median

    @property
    def tail_ratio(self) -> float:
        """p99.9 / median (∞-safe: 0 when the median is 0)."""
        if self.median <= 0:
            return 0.0
        return self.p999 / self.median

    def as_dict(self) -> dict:
        """Plain-dict view used by the report formatter."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "p99.9": self.p999,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "tail_span": self.tail_span,
            "tail_ratio": self.tail_ratio,
        }

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f}ms median={self.median:.2f}ms "
            f"p95={self.p95:.2f}ms p99={self.p99:.2f}ms p99.9={self.p999:.2f}ms"
        )


#: The summary of an empty sample set (shared by exact and streaming paths).
EMPTY_SUMMARY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(samples: Iterable[float] | np.ndarray) -> LatencySummary:
    """Compute the standard latency summary for a sample set."""
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples, dtype=float)
    if arr.size == 0:
        return EMPTY_SUMMARY
    p50, p95, p99, p999 = (float(np.percentile(arr, q)) for q in _DEFAULT_PERCENTILES)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=p50,
        p95=p95,
        p99=p99,
        p999=p999,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std()),
    )


def tail_to_median_ratio(samples: Sequence[float] | np.ndarray, q: float = 99.9) -> float:
    """Ratio between the ``q``-th percentile and the median of ``samples``."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    med = float(np.percentile(arr, 50.0))
    if med <= 0:
        return 0.0
    return float(np.percentile(arr, q)) / med
