"""Aggregation of replicated measurements: means with confidence intervals.

The sweep runner replicates every grid point across N seeds; this module
reduces such replicate sets to ``mean ± halfwidth`` summaries.  Intervals use
the Student-t critical value for small replicate counts (the common case —
the paper itself uses 5 repetitions) and fall back to the normal quantile
for large ones.

Streaming-mode trials additionally carry serialized latency histograms;
:func:`pooled_histogram_summary` reduces a replicate set of those by
bucket-wise merge — the pooled percentiles are computed over the union of
all replicates' samples (at histogram resolution) without ever
concatenating raw latency arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .histogram import LatencyHistogram, merge_histograms

__all__ = [
    "ConfidenceInterval",
    "aggregate_metric_samples",
    "mean_ci",
    "pooled_histogram_summary",
]

# Two-sided Student-t critical values t_{df, 1-(1-confidence)/2} for the
# confidence levels the CLI exposes, df = 1..30.  Beyond 30 degrees of
# freedom the normal quantile is within ~2 % and is used instead.
_T_TABLE: Mapping[float, tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
        3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
        2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ),
}
_Z_NORMAL: Mapping[float, float] = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def _critical_value(n: int, confidence: float) -> float:
    """Two-sided critical value for a mean CI over ``n`` samples."""
    if confidence not in _T_TABLE:
        raise ValueError(
            f"unsupported confidence {confidence}; choose one of {sorted(_T_TABLE)}"
        )
    df = n - 1
    table = _T_TABLE[confidence]
    if df <= 0:
        return 0.0
    if df <= len(table):
        return table[df - 1]
    return _Z_NORMAL[confidence]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A ``mean ± halfwidth`` interval over ``n`` replicates."""

    mean: float
    halfwidth: float
    n: int
    confidence: float = 0.95

    @property
    def lo(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.halfwidth

    @property
    def hi(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.halfwidth

    def as_dict(self) -> dict:
        """Plain-dict view (used for JSON persistence)."""
        return {
            "mean": self.mean,
            "halfwidth": self.halfwidth,
            "n": self.n,
            "confidence": self.confidence,
        }

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.halfwidth:.2f}"


def mean_ci(samples: Iterable[float] | np.ndarray, confidence: float = 0.95) -> ConfidenceInterval:
    """The mean of ``samples`` with a two-sided confidence interval.

    A single sample (or an empty set) yields a degenerate interval with a
    zero halfwidth — there is no variance information to spread over.
    """
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples, dtype=float)
    n = int(arr.size)
    if n == 0:
        return ConfidenceInterval(0.0, 0.0, 0, confidence)
    mean = float(arr.mean())
    if n == 1:
        return ConfidenceInterval(mean, 0.0, 1, confidence)
    sem = float(arr.std(ddof=1)) / float(np.sqrt(n))
    halfwidth = _critical_value(n, confidence) * sem
    return ConfidenceInterval(mean, halfwidth, n, confidence)


def aggregate_metric_samples(
    samples_by_metric: Mapping[str, Sequence[float]], confidence: float = 0.95
) -> dict[str, ConfidenceInterval]:
    """``mean_ci`` applied to every metric of a replicate set."""
    return {name: mean_ci(values, confidence) for name, values in samples_by_metric.items()}


def pooled_histogram_summary(histogram_payloads: Iterable[dict]) -> dict | None:
    """Merge serialized histograms bucket-wise and summarize the pool.

    ``histogram_payloads`` are :meth:`LatencyHistogram.to_dict` dicts (one
    per replicate).  Returns the pooled :class:`LatencySummary` as a plain
    dict, or ``None`` when the iterable is empty.  Merge order cannot
    affect the outcome (bucket addition is associative and commutative).
    """
    merged = merge_histograms(LatencyHistogram.from_dict(p) for p in histogram_payloads)
    if merged is None:
        return None
    return merged.summarize().as_dict()
