"""Empirical cumulative distribution functions (Figures 6 and 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ECDF", "ecdf"]


@dataclass(frozen=True)
class ECDF:
    """An empirical CDF: sorted sample values and cumulative probabilities."""

    values: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.probabilities.shape:
            raise ValueError("values and probabilities must have the same shape")

    def evaluate(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        if self.values.size == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of the empirical distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.values.size == 0:
            return 0.0
        idx = min(self.values.size - 1, int(np.ceil(q * self.values.size)) - 1)
        return float(self.values[max(idx, 0)])

    def tail_table(self, probabilities: Sequence[float] = (0.5, 0.95, 0.99, 0.999)) -> dict:
        """Quantiles at the requested probabilities (for report rows)."""
        return {p: self.quantile(p) for p in probabilities}

    def __len__(self) -> int:
        return int(self.values.size)


def ecdf(samples: Iterable[float] | np.ndarray) -> ECDF:
    """Build the ECDF of a sample set."""
    arr = np.sort(np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples, dtype=float))
    if arr.size == 0:
        return ECDF(values=arr, probabilities=arr.copy())
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return ECDF(values=arr, probabilities=probs)
