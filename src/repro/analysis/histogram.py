"""Log-bucketed streaming latency histogram for scale-mode metrics.

:class:`LatencyHistogram` is a DDSketch/HdrHistogram-style quantile sketch:
values land in geometrically spaced buckets with growth factor
``gamma = (1 + e) / (1 - e)`` where ``e`` is the configured relative error,
so any reported quantile is within ``e`` (relative) of a sample whose rank
differs by less than one from the requested rank.  Memory is O(buckets) —
independent of how many values are recorded — and bucket occupancy grows
only with the *dynamic range* of the data: tracking 1 µs .. 10 s at 1 %
error needs under a thousand buckets.

Design choices that matter to the rest of the system:

* **Bucket state is the whole state.**  Mean and standard deviation are
  derived from bucket midpoints rather than exact running sums, so two
  histograms with identical bucket counts are *identical* — merging is
  exactly associative and commutative, and :meth:`digest` is a faithful
  content hash.  (Exact-mode metrics keep exact means; streaming mode
  trades ≤ ``relative_error`` on every statistic for fixed memory.)
* **Merge is bucket-wise addition** (:meth:`merge`), which is what the
  sweep runner uses to pool replicate histograms across seeds without ever
  concatenating raw latency arrays.
* **Exact min/max are tracked** and quantile estimates are clamped into
  ``[min, max]``, so degenerate cases (one sample, constant samples) report
  exact values.
* Values at or below ``min_trackable_ms`` collapse into a dedicated
  zero-bucket estimated at 0.0 — an absolute error of at most
  ``min_trackable_ms`` (1 µs by default), far below any latency the
  simulator produces.

The error contract, precisely: for a sample set ``S`` and quantile ``q``,
``quantile(q)`` is within ``relative_error`` of at least one of the two
order statistics bracketing rank ``q * (len(S) - 1)`` (the same rank
convention numpy's linear-interpolation percentile uses).
:func:`quantile_within_bound` checks exactly that contract and is shared by
the property-test suite and the CLI's ``scale --compare-exact`` smoke.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, Iterator

import numpy as np

from .percentiles import EMPTY_SUMMARY, LatencySummary

__all__ = ["LatencyHistogram", "merge_histograms", "quantile_within_bound"]


class LatencyHistogram:
    """A fixed-memory quantile sketch over non-negative latencies (ms)."""

    __slots__ = (
        "relative_error",
        "min_trackable_ms",
        "_gamma",
        "_log_gamma",
        "_counts",
        "_zero_count",
        "_count",
        "_min",
        "_max",
    )

    def __init__(self, relative_error: float = 0.01, min_trackable_ms: float = 1e-3) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), got {relative_error}")
        if min_trackable_ms <= 0.0:
            raise ValueError(f"min_trackable_ms must be positive, got {min_trackable_ms}")
        self.relative_error = float(relative_error)
        self.min_trackable_ms = float(min_trackable_ms)
        self._gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        self._log_gamma = math.log(self._gamma)
        self._counts: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------- recording
    def record(self, value_ms: float, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value_ms``."""
        if value_ms < 0.0 or math.isnan(value_ms) or math.isinf(value_ms):
            raise ValueError(f"latency must be finite and non-negative, got {value_ms}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._count += count
        if value_ms < self._min:
            self._min = value_ms
        if value_ms > self._max:
            self._max = value_ms
        if value_ms <= self.min_trackable_ms:
            self._zero_count += count
            return
        index = math.ceil(math.log(value_ms / self.min_trackable_ms) / self._log_gamma)
        self._counts[index] = self._counts.get(index, 0) + count

    def record_many(self, values_ms: Iterable[float] | np.ndarray) -> None:
        """Vectorized :meth:`record` over an array of latencies."""
        arr = np.asarray(values_ms, dtype=float)
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)) or bool(np.any(arr < 0.0)):
            raise ValueError("latencies must be finite and non-negative")
        self._count += int(arr.size)
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        tracked = arr[arr > self.min_trackable_ms]
        self._zero_count += int(arr.size - tracked.size)
        if tracked.size:
            indices = np.ceil(np.log(tracked / self.min_trackable_ms) / self._log_gamma)
            unique, counts = np.unique(indices.astype(np.int64), return_counts=True)
            for index, count in zip(unique.tolist(), counts.tolist()):
                self._counts[index] = self._counts.get(index, 0) + count

    # -------------------------------------------------------------- queries
    @property
    def count(self) -> int:
        """Total values recorded."""
        return self._count

    @property
    def bucket_count(self) -> int:
        """Occupied buckets (the memory footprint), zero-bucket included."""
        return len(self._counts) + (1 if self._zero_count else 0)

    @property
    def min(self) -> float:
        """Exact minimum recorded value (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact maximum recorded value (0.0 when empty)."""
        return self._max if self._count else 0.0

    def _estimate(self, index: int) -> float:
        """Midpoint estimate of bucket ``index`` (relative error ≤ e)."""
        return self.min_trackable_ms * 2.0 * self._gamma**index / (self._gamma + 1.0)

    def _clamp(self, value: float) -> float:
        return min(max(value, self._min), self._max)

    def quantile(self, q: float) -> float:
        """Estimate of the ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * (self._count - 1)
        cumulative = self._zero_count
        if rank < cumulative:
            return self._clamp(0.0)
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if rank < cumulative:
                return self._clamp(self._estimate(index))
        return self._max

    def percentile(self, p: float) -> float:
        """Estimate of the ``p``-th percentile (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def _moments(self) -> tuple[float, float]:
        """(mean, std) derived from bucket midpoints (zero-bucket → 0.0)."""
        if self._count == 0:
            return 0.0, 0.0
        total = 0.0
        total_sq = 0.0
        for index, count in self._counts.items():
            estimate = self._estimate(index)
            total += estimate * count
            total_sq += estimate * estimate * count
        mean = total / self._count
        variance = max(0.0, total_sq / self._count - mean * mean)
        return mean, math.sqrt(variance)

    def summarize(self) -> LatencySummary:
        """The standard latency summary, every statistic within the bound."""
        if self._count == 0:
            return EMPTY_SUMMARY
        mean, std = self._moments()
        return LatencySummary(
            count=self._count,
            mean=mean,
            median=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            p999=self.quantile(0.999),
            minimum=self.min,
            maximum=self.max,
            std=std,
        )

    # -------------------------------------------------------------- merging
    def compatible_with(self, other: "LatencyHistogram") -> bool:
        """True when bucket layouts line up so merging is well-defined."""
        same_error = self.relative_error == other.relative_error
        return same_error and self.min_trackable_ms == other.min_trackable_ms

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Bucket-wise add ``other`` into this histogram (in place).

        Exactly associative and commutative: merge order can never change
        any reported statistic or the digest.
        """
        if not self.compatible_with(other):
            message = (
                "cannot merge histograms with different bucket layouts: "
                f"(e={self.relative_error}, min={self.min_trackable_ms}) vs "
                f"(e={other.relative_error}, min={other.min_trackable_ms})"
            )
            raise ValueError(message)
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "LatencyHistogram":
        """An independent deep copy."""
        clone = LatencyHistogram(self.relative_error, self.min_trackable_ms)
        clone._counts = dict(self._counts)
        clone._zero_count = self._zero_count
        clone._count = self._count
        clone._min = self._min
        clone._max = self._max
        return clone

    # -------------------------------------------------------- serialization
    def buckets(self) -> Iterator[tuple[int, int]]:
        """``(bucket_index, count)`` pairs in ascending index order."""
        return iter(sorted(self._counts.items()))

    def to_dict(self) -> dict:
        """JSON-serializable state (exact round trip via :meth:`from_dict`)."""
        return {
            "relative_error": self.relative_error,
            "min_trackable_ms": self.min_trackable_ms,
            "count": self._count,
            "zero_count": self._zero_count,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {str(index): count for index, count in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(
            relative_error=float(payload["relative_error"]),
            min_trackable_ms=float(payload["min_trackable_ms"]),
        )
        hist._counts = {int(index): int(count) for index, count in payload["buckets"].items()}
        hist._zero_count = int(payload["zero_count"])
        hist._count = int(payload["count"])
        hist._min = math.inf if payload["min"] is None else float(payload["min"])
        hist._max = -math.inf if payload["max"] is None else float(payload["max"])
        return hist

    def digest(self) -> str:
        """sha256 content hash of the full histogram state."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(n={self._count}, buckets={self.bucket_count}, "
            f"e={self.relative_error}, range=[{self.min:.3f}, {self.max:.3f}] ms)"
        )


def merge_histograms(histograms: Iterable[LatencyHistogram]) -> LatencyHistogram | None:
    """Pool histograms by bucket-wise merge; ``None`` for an empty iterable.

    The inputs are not mutated.  This is how replicate sets are reduced to a
    pooled latency distribution without concatenating raw sample arrays.
    """
    merged: LatencyHistogram | None = None
    for histogram in histograms:
        if merged is None:
            merged = histogram.copy()
        else:
            merged.merge(histogram)
    return merged


def quantile_within_bound(
    histogram: LatencyHistogram, samples: np.ndarray, q: float, slack: float = 1e-9
) -> bool:
    """Check the documented error contract of ``histogram.quantile(q)``.

    True when the estimate is within ``relative_error`` of at least one of
    the two order statistics bracketing rank ``q * (n - 1)`` of ``samples``
    (values at or below ``min_trackable_ms`` are held to an absolute bound
    of ``min_trackable_ms`` instead).
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        return histogram.quantile(q) == 0.0
    rank = q * (arr.size - 1)
    lo = float(arr[math.floor(rank)])
    hi = float(arr[math.ceil(rank)])
    estimate = histogram.quantile(q)
    e = histogram.relative_error
    for exact in (lo, hi):
        if exact <= histogram.min_trackable_ms:
            if abs(estimate - exact) <= histogram.min_trackable_ms + slack:
                return True
        elif abs(estimate - exact) <= e * exact + slack:
            return True
    return False
