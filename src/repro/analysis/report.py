"""Plain-text report tables used by the experiment harness.

Every experiment prints its results as fixed-width tables so the benchmark
harness output can be compared side-by-side with the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_summary_rows", "format_comparison", "indent"]


def _format_cell(value, precision: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_summary_rows(
    summaries: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] = ("mean", "median", "p95", "p99", "p99.9"),
    label: str = "strategy",
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render one row per strategy/scenario from latency-summary dicts."""
    headers = [label, *columns]
    rows = [[name, *[summary.get(col, 0.0) for col in columns]] for name, summary in summaries.items()]
    return format_table(headers, rows, precision=precision, title=title)


def format_comparison(
    baseline_name: str,
    baseline: Mapping[str, float],
    candidate_name: str,
    candidate: Mapping[str, float],
    columns: Sequence[str] = ("mean", "median", "p95", "p99", "p99.9"),
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render a baseline-vs-candidate comparison with improvement factors."""
    headers = ["metric", baseline_name, candidate_name, f"{baseline_name}/{candidate_name}"]
    rows = []
    for col in columns:
        base_val = float(baseline.get(col, 0.0))
        cand_val = float(candidate.get(col, 0.0))
        ratio = base_val / cand_val if cand_val > 0 else float("inf")
        rows.append([col, base_val, cand_val, ratio])
    return format_table(headers, rows, precision=precision, title=title)


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of ``text`` by ``prefix``."""
    return "\n".join(prefix + line for line in text.splitlines())
