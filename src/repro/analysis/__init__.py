"""Analysis helpers: percentiles, ECDFs, time series and oscillation metrics."""

from .aggregate import (
    ConfidenceInterval,
    aggregate_metric_samples,
    mean_ci,
    pooled_histogram_summary,
)
from .ecdf import ECDF, ecdf
from .histogram import LatencyHistogram, merge_histograms, quantile_within_bound
from .oscillation import LoadConditioningReport, burstiness, load_conditioning, oscillation_score
from .percentiles import EMPTY_SUMMARY, LatencySummary, percentile, summarize, tail_to_median_ratio
from .report import format_comparison, format_summary_rows, format_table, indent
from .report_sweep import bench_means, markdown_to_html, render_report
from .timeseries import downsample, moving_average, moving_median, window_counts

__all__ = [
    "ConfidenceInterval",
    "ECDF",
    "EMPTY_SUMMARY",
    "LatencyHistogram",
    "LatencySummary",
    "LoadConditioningReport",
    "aggregate_metric_samples",
    "bench_means",
    "burstiness",
    "markdown_to_html",
    "mean_ci",
    "merge_histograms",
    "render_report",
    "downsample",
    "ecdf",
    "quantile_within_bound",
    "format_comparison",
    "format_summary_rows",
    "format_table",
    "indent",
    "load_conditioning",
    "moving_average",
    "moving_median",
    "oscillation_score",
    "percentile",
    "pooled_histogram_summary",
    "summarize",
    "tail_to_median_ratio",
    "window_counts",
]
