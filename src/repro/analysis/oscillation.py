"""Load-oscillation / load-conditioning metrics (Figures 2, 8 and 9).

The paper characterises Dynamic Snitching's herd behaviour by looking at the
number of reads served per 100 ms window by the most heavily utilised node:
under DS that series swings between 0 and ~500 (synchronised bursts), while
C3 keeps it in a narrow band.  These helpers quantify that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LoadConditioningReport", "load_conditioning", "oscillation_score", "burstiness"]


@dataclass(frozen=True, slots=True)
class LoadConditioningReport:
    """Summary of a per-window load series for one node."""

    windows: int
    mean: float
    median: float
    p99: float
    maximum: float
    minimum: float
    spread_p99_median: float
    coefficient_of_variation: float
    zero_fraction: float

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "max": self.maximum,
            "min": self.minimum,
            "p99_minus_median": self.spread_p99_median,
            "cv": self.coefficient_of_variation,
            "zero_fraction": self.zero_fraction,
        }


def load_conditioning(series: Sequence[float] | np.ndarray) -> LoadConditioningReport:
    """Summarise a per-window load series (requests served per window)."""
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        return LoadConditioningReport(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean = float(arr.mean())
    median = float(np.median(arr))
    p99 = float(np.percentile(arr, 99))
    cv = float(arr.std() / mean) if mean > 0 else 0.0
    return LoadConditioningReport(
        windows=int(arr.size),
        mean=mean,
        median=median,
        p99=p99,
        maximum=float(arr.max()),
        minimum=float(arr.min()),
        spread_p99_median=p99 - median,
        coefficient_of_variation=cv,
        zero_fraction=float(np.mean(arr == 0)),
    )


def oscillation_score(series: Sequence[float] | np.ndarray) -> float:
    """A scalar oscillation indicator: mean absolute window-to-window swing,
    normalised by the series mean.  Synchronised herd behaviour produces
    values well above 1; a smooth load profile stays below ~0.5.
    """
    arr = np.asarray(series, dtype=float)
    if arr.size < 2:
        return 0.0
    mean = arr.mean()
    if mean <= 0:
        return 0.0
    swings = np.abs(np.diff(arr))
    return float(swings.mean() / mean)


def burstiness(series: Sequence[float] | np.ndarray) -> float:
    """The Fano factor (variance / mean) of the per-window counts.

    A Poisson-like smooth load has a Fano factor near 1; synchronised
    oscillations inflate it substantially.
    """
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        return 0.0
    mean = arr.mean()
    if mean <= 0:
        return 0.0
    return float(arr.var() / mean)
